#include "reactor/reactor.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#if defined(__linux__)
#include <sched.h>
#endif

namespace ceu::reactor {

namespace {
uint64_t splitmix64(uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t mono_ns() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Pins the calling thread to the idx-th CPU the process is allowed on
/// (cpuset-aware: the allowed set, not the machine's raw CPU list). Best
/// effort — failure just leaves the thread floating.
void pin_self_to_allowed_cpu(size_t idx) {
#if defined(__linux__)
    cpu_set_t allowed;
    CPU_ZERO(&allowed);
    if (sched_getaffinity(0, sizeof allowed, &allowed) != 0) return;
    std::vector<int> cpus;
    for (int c = 0; c < CPU_SETSIZE; ++c) {
        if (CPU_ISSET(c, &allowed)) cpus.push_back(c);
    }
    if (cpus.empty()) return;
    cpu_set_t one;
    CPU_ZERO(&one);
    CPU_SET(cpus[idx % cpus.size()], &one);
    (void)sched_setaffinity(0, sizeof one, &one);
#else
    (void)idx;
#endif
}
}  // namespace

Reactor::Reactor(ReactorConfig cfg)
    : cfg_(cfg), shards_(std::max<size_t>(1, cfg.workers)) {
    stealing_ = cfg_.steal && shards_.size() > 1;
    for (Shard& sh : shards_) {
        sh.wheel.reset(cfg_.timer_granularity, &sh.wheel_arena);
    }
    if (shards_.size() > 1) {
        threads_.reserve(shards_.size());
        for (size_t i = 0; i < shards_.size(); ++i) {
            threads_.emplace_back(&Reactor::worker_main, this, i);
        }
    }
}

Reactor::~Reactor() {
    if (!threads_.empty()) {
        {
            std::lock_guard<std::mutex> lk(pool_mu_);
            cmd_ = Cmd::Exit;
            ++generation_;
        }
        pool_cv_.notify_all();
        for (std::thread& t : threads_) t.join();
    }
    // Undelivered envelopes are pool cells, not heap nodes: return them to
    // their pool before the Mailbox destructor (which deletes whatever is
    // left — correct for standalone mailboxes, fatal for pooled cells).
    for (Shard& sh : shards_) {
        sh.drained.clear();
        sh.mailbox.drain_into(sh.drained);
        for (Envelope* e : sh.drained) sh.pool.free(e);
        sh.drained.clear();
    }
    for (std::atomic<Slot*>& c : chunks_) {
        delete[] c.load(std::memory_order_relaxed);
    }
}

// -- fleet construction -------------------------------------------------------

void Reactor::check_id(InstanceId id) const {
    if (static_cast<size_t>(id) >= published_.load(std::memory_order_acquire)) {
        throw std::out_of_range("reactor: unknown instance id");
    }
}

InstanceId Reactor::add_slot(std::shared_ptr<const flat::CompiledProgram> cp,
                             host::Config hcfg) {
    size_t idx = published_.load(std::memory_order_relaxed);
    if (idx >= kMaxChunks * kChunkSize) {
        throw std::length_error("reactor: instance table full");
    }
    size_t c = idx >> kChunkShift;
    Slot* chunk = chunks_[c].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
        chunk = new Slot[kChunkSize];
        chunks_[c].store(chunk, std::memory_order_release);
    }
    Slot& sl = chunk[idx & kChunkMask];
    hcfg.collect_trace = cfg_.collect_traces;
    sl.inst = std::make_unique<host::Instance>(std::move(cp), hcfg);
    if (cfg_.observe_stats) sl.inst->observe_stats();
    sl.inst->set_reaction_timing(cfg_.time_reactions);
    sl.policy = cfg_.supervise;
    InstanceId id = static_cast<InstanceId>(idx);
    Shard& sh = shards_[id % shards_.size()];
    sh.members.push_back(id);
    sh.schedule_dirty = true;
    // Publish *after* the slot is fully constructed: a concurrent
    // injector that reads the new size (acquire) sees a complete slot.
    published_.store(idx + 1, std::memory_order_release);
    return id;
}

InstanceId Reactor::add_instance(std::shared_ptr<const flat::CompiledProgram> cp) {
    host::Config hcfg;
    hcfg.engine = cfg_.engine;
    return add_slot(std::move(cp), hcfg);
}

InstanceId Reactor::add_instance(std::shared_ptr<const flat::CompiledProgram> cp,
                                 host::Config hcfg) {
    return add_slot(std::move(cp), hcfg);
}

void Reactor::retire(InstanceId id) {
    check_id(id);
    slot(id).retired.store(true, std::memory_order_release);
}

bool Reactor::retired(InstanceId id) const {
    check_id(id);
    return slot(id).retired.load(std::memory_order_acquire);
}

void Reactor::set_policy(InstanceId id, const SupervisorPolicy& policy) {
    check_id(id);
    Slot& sl = slot(id);
    sl.policy = policy;
    // Cadence re-derives from the next reaction boundary (lazy init in
    // after_reaction); dropping the old threshold makes that happen.
    sl.sup.next_checkpoint_at = 0;
}

const MemberState& Reactor::supervision(InstanceId id) const {
    check_id(id);
    return slot(id).sup;
}

void Reactor::refresh_schedule(Shard& sh, size_t shard_idx) {
    sh.schedule = sh.members;
    uint64_t s = cfg_.seed ^ (0xa0761d6478bd642fULL * (shard_idx + 1));
    for (size_t i = sh.schedule.size(); i > 1; --i) {
        size_t j = static_cast<size_t>(splitmix64(s) % i);
        std::swap(sh.schedule[i - 1], sh.schedule[j]);
    }
    sh.schedule_dirty = false;
}

void Reactor::boot() {
    for (size_t i = 0; i < shards_.size(); ++i) {
        if (shards_[i].schedule_dirty) refresh_schedule(shards_[i], i);
    }
    dispatch(Cmd::Boot);
}

void Reactor::boot_shard(Shard& sh) {
    for (InstanceId id : sh.schedule) {
        Slot& sl = slot(id);
        if (sl.booted || sl.retired.load(std::memory_order_relaxed)) continue;
        sl.booted = true;
        try {
            sl.inst->advance_to(now_);  // late joiners boot at the fleet instant
            sl.inst->boot();
            sh.local_ops.clear();
            after_reaction(id, sl, sh.local_ops);
            apply_ops(sh, id, sh.local_ops);
        } catch (const std::exception& ex) {
            sl.error = ex.what();
        }
    }
    sh.work_left = !sh.async_live.empty() || shard_has_due_restart(sh) ||
                   (sh.wheel.next_deadline() >= 0 && sh.wheel.next_deadline() <= now_);
}

// -- inputs -------------------------------------------------------------------

InjectResult Reactor::inject(InstanceId id, EventId event, rt::Value v) {
    check_id(id);
    Slot& sl = slot(id);
    if (sl.retired.load(std::memory_order_acquire)) {
        return {InjectResult::Status::Retired, 0};
    }
    // Reserve an inbox seat before allocating anything: capacity is
    // enforced at the producer, so a flooded member sheds here instead of
    // growing its mailbox without bound. The seat is released by the
    // draining executor, one per envelope.
    uint32_t prev = sl.inbox_depth.fetch_add(1, std::memory_order_acq_rel);
    if (cfg_.inbox_capacity > 0 && prev >= cfg_.inbox_capacity) {
        sl.inbox_depth.fetch_sub(1, std::memory_order_relaxed);
        sl.sheds.fetch_add(1, std::memory_order_relaxed);
        // The shed occurrence consumes a ticket: accepted tickets keep
        // their total order, and the rejected caller learns which ordinal
        // was dropped.
        uint64_t t = ticket_.fetch_add(1, std::memory_order_relaxed);
        return {InjectResult::Status::Shed, t};
    }
    Shard& sh = shards_[id % shards_.size()];
    // Pool cell, not a heap node: a warmed-up fleet injects and drains
    // without ever touching the global allocator.
    Envelope* e = sh.pool.alloc();
    e->instance = id;
    e->event = event;
    e->value = v;
    // push() transfers ownership: a worker draining mid-round may consume
    // and recycle the envelope immediately, so the ticket must be returned
    // from a local, never read back through e.
    uint64_t t = ticket_.fetch_add(1, std::memory_order_relaxed);
    e->ticket = t;
    sh.mailbox.push(e);
    return {InjectResult::Status::Accepted, t};
}

InjectResult Reactor::inject(InstanceId id, const std::string& event, rt::Value v) {
    check_id(id);
    // resolve_input only reads the instance's immutable compiled program,
    // so the name path stays as thread-safe as the id path.
    EventId ev = slot(id).inst->resolve_input(event);
    if (ev == kNoEvent) return {InjectResult::Status::UnknownEvent, 0};
    return inject(id, ev, v);
}

void Reactor::advance(Micros delta) {
    if (delta > 0) now_ += delta;
    run_round();
}

// -- rounds -------------------------------------------------------------------

void Reactor::run_round() {
    for (size_t i = 0; i < shards_.size(); ++i) {
        if (shards_[i].schedule_dirty) refresh_schedule(shards_[i], i);
    }
    dispatch(Cmd::Round);
    if (on_round_end) on_round_end();
}

bool Reactor::work_pending() const {
    for (const Shard& sh : shards_) {
        if (sh.work_left || !sh.mailbox.empty()) return true;
    }
    return false;
}

size_t Reactor::drain(size_t max_rounds) {
    size_t rounds = 0;
    while (rounds < max_rounds && work_pending()) {
        run_round();
        ++rounds;
    }
    return rounds;
}

std::vector<Reactor::DrainedMember> Reactor::drain_and_checkpoint(size_t max_rounds) {
    drain(max_rounds);
    std::vector<DrainedMember> out;
    size_t n = published_.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) {
        const Slot& sl = slot(static_cast<InstanceId>(i));
        if (!sl.booted || sl.retired.load(std::memory_order_relaxed)) continue;
        rt::Engine::Status st = sl.inst->status();
        if (st != rt::Engine::Status::Running && st != rt::Engine::Status::Faulted) {
            continue;  // Terminated (or never-ran) members have nothing to resume
        }
        out.push_back({static_cast<InstanceId>(i), sl.inst->save()});
    }
    return out;
}

Micros Reactor::next_restart_due() const {
    Micros best = -1;
    for (const Shard& sh : shards_) {
        for (const RestartDue& d : sh.agenda) {
            if (best < 0 || d.due < best) best = d.due;
        }
    }
    return best;
}

void Reactor::sync_clock(Slot& sl) { sl.inst->advance_to(now_); }

// -- supervision --------------------------------------------------------------

void Reactor::on_member_fault(InstanceId id, Slot& sl, std::vector<DeferredOp>& ops) {
    sl.sup.fault_open = true;
    uint64_t tick = cfg_.timer_granularity > 0
                        ? static_cast<uint64_t>(now_ / cfg_.timer_granularity)
                        : static_cast<uint64_t>(now_);
    size_t in_window = note_fault_tick(sl.sup, sl.policy, tick);
    if (sl.policy.quarantine_after > 0 &&
        in_window >= sl.policy.quarantine_after) {
        sl.sup.quarantined = true;
        sl.inst->note("[supervisor] quarantined after " +
                      std::to_string(sl.sup.faults) + " faults");
        return;
    }
    if (sl.policy.restart == SupervisorPolicy::Restart::Park) return;
    Micros delay = backoff_delay_us(sl.policy, cfg_.seed, id, sl.sup.faults,
                                    cfg_.timer_granularity);
    ops.push_back({DeferredOp::Kind::Agenda, now_ + delay});
}

void Reactor::restart_member(InstanceId id, Shard& sh) {
    Slot& sl = slot(id);
    if (sl.retired.load(std::memory_order_relaxed) || sl.sup.quarantined) return;
    if (sl.inst->status() != rt::Engine::Status::Faulted) return;
    host::Instance& inst = *sl.inst;
    if (sl.policy.restart == SupervisorPolicy::Restart::Restore &&
        !sl.sup.checkpoint.empty()) {
        inst.load(sl.sup.checkpoint);
        ++sl.sup.restores;
        inst.note("[supervisor] restored from checkpoint (fault " +
                  std::to_string(sl.sup.faults) + ")");
        // Catch the restored clock up to the fleet instant: timers that
        // came due between the checkpoint and now fire immediately, in
        // deadline order, exactly as for a late joiner.
        inst.advance_to(now_);
    } else {
        inst.reset();
        inst.advance_to(now_);  // reboot at the fleet instant, not the epoch
        inst.note("[supervisor] rebooted (fault " +
                  std::to_string(sl.sup.faults) + ")");
        inst.boot();
    }
    ++sl.sup.supervised_restarts;
    sl.sup.fault_open = false;
    sl.sup.next_checkpoint_at = 0;  // cadence restarts from the new state
    sl.indexed_deadline = -1;       // wheel entries from the old life are stale
    sh.local_ops.clear();
    after_reaction(id, sl, sh.local_ops);
    apply_ops(sh, id, sh.local_ops);
}

void Reactor::restart(InstanceId id) {
    check_id(id);
    Slot& sl = slot(id);
    if (sl.retired.load(std::memory_order_acquire)) return;
    Shard& sh = shards_[id % shards_.size()];
    sl.inst->advance_to(now_);  // crash happens at the fleet instant
    sl.inst->power_cycle();
    sl.booted = true;
    sl.sup.fault_open = false;
    sl.sup.next_checkpoint_at = 0;
    sl.indexed_deadline = -1;  // wheel entries from the old life are stale
    sh.local_ops.clear();
    after_reaction(id, sl, sh.local_ops);
    apply_ops(sh, id, sh.local_ops);
}

bool Reactor::shard_has_due_restart(const Shard& sh) const {
    for (const RestartDue& d : sh.agenda) {
        if (d.due <= now_) return true;
    }
    return false;
}

void Reactor::after_reaction(InstanceId id, Slot& sl, std::vector<DeferredOp>& ops) {
    // Backend-neutral gauges: interpreted and AOT-compiled members expose
    // the same status/reactions/deadline/async surface through Instance.
    const host::Instance& inst = *sl.inst;
    if (inst.status() == rt::Engine::Status::Faulted) {
        // Parked (or awaiting its scheduled restart): a Faulted engine
        // ignores go_time/go_event, so keeping its deadline in the wheel
        // would make the shard re-collect a dead entry every round.
        if (!sl.sup.fault_open) on_member_fault(id, sl, ops);
        return;
    }
    if (sl.policy.checkpoint_every > 0 &&
        inst.status() == rt::Engine::Status::Running) {
        if (sl.sup.next_checkpoint_at == 0) {
            sl.sup.next_checkpoint_at = inst.reactions() + sl.policy.checkpoint_every;
        } else if (inst.reactions() >= sl.sup.next_checkpoint_at) {
            sl.sup.checkpoint = sl.inst->save();
            ++sl.sup.checkpoints;
            sl.sup.next_checkpoint_at = inst.reactions() + sl.policy.checkpoint_every;
        }
    }
    Micros d = inst.next_timer_deadline();
    if (d >= 0 && d != sl.indexed_deadline) {
        ops.push_back({DeferredOp::Kind::Wheel, d});
        sl.indexed_deadline = d;
    }
    if (!sl.async_listed && inst.status() == rt::Engine::Status::Running &&
        inst.has_async_work()) {
        ops.push_back({DeferredOp::Kind::AsyncList, 0});
        sl.async_listed = true;
    }
}

void Reactor::apply_ops(Shard& sh, InstanceId id, const std::vector<DeferredOp>& ops) {
    for (const DeferredOp& op : ops) {
        switch (op.kind) {
            case DeferredOp::Kind::Wheel:
                sh.wheel.schedule(id, op.at);
                break;
            case DeferredOp::Kind::AsyncList:
                sh.async_live.push_back(id);
                break;
            case DeferredOp::Kind::Agenda:
                sh.agenda.push_back({op.at, id});
                break;
        }
    }
}

// -- stealable work items -----------------------------------------------------

void Reactor::execute_item(Shard& sh, size_t idx) {
    const RoundItem& it = sh.items[idx];
    std::vector<DeferredOp>& ops = sh.ops[idx];
    ops.clear();
    Slot& sl = slot(it.id);
    if (it.phase == 1) {
        // All of one instance's envelopes this round, in ticket order.
        for (uint32_t k = it.env_begin; k < it.env_end; ++k) {
            Envelope* e = sh.drained[k];
            sl.inbox_depth.fetch_sub(1, std::memory_order_relaxed);
            if (sl.booted && !sl.retired.load(std::memory_order_relaxed)) {
                try {
                    sync_clock(sl);
                    sl.inst->inject(static_cast<int>(e->event), e->value);
                    after_reaction(it.id, sl, ops);
                } catch (const std::exception& ex) {
                    if (sl.error.empty()) sl.error = ex.what();
                }
            }
            sh.pool.free(e);
        }
    } else {
        // One instance's async slice budget.
        sl.async_listed = false;
        if (!sl.retired.load(std::memory_order_relaxed)) {
            try {
                if (cfg_.async_slices_per_round > 0) {
                    // One batched call per member per round: a compiled
                    // backend crosses the ABI once for the whole budget.
                    // Both backends stop early on their own when the
                    // program leaves Running or the async queue drains.
                    sl.inst->run_async_slices(cfg_.async_slices_per_round);
                }
                after_reaction(it.id, sl, ops);
            } catch (const std::exception& ex) {
                if (sl.error.empty()) sl.error = ex.what();
            }
        }
    }
    sh.done[idx].store(1, std::memory_order_release);
}

void Reactor::run_items(Shard& sh, size_t n) {
    if (sh.ops.size() < n) sh.ops.resize(n);
    if (sh.done_cap < n) {
        sh.done = std::make_unique<std::atomic<uint8_t>[]>(n);
        sh.done_cap = n;
    }
    if (!stealing_) {
        // Single worker (or stealing off): execute and apply per item, in
        // order. Identical op order to the stealing path below — that
        // equivalence is the determinism argument.
        for (size_t i = 0; i < n; ++i) {
            execute_item(sh, i);
            apply_ops(sh, sh.items[i].id, sh.ops[i]);
        }
        return;
    }
    for (size_t i = 0; i < n; ++i) {
        sh.done[i].store(0, std::memory_order_relaxed);
    }
    sh.deque.reserve(n);
    sh.deque.publish(static_cast<uint32_t>(n));
    // Owner works the front of the order; thieves take from the back.
    int64_t idx;
    while ((idx = sh.deque.take()) >= 0) {
        execute_item(sh, static_cast<size_t>(idx));
    }
    // Bookkeeping in item order, waiting on stolen items still in flight.
    // The acquire load pairs with the executor's release store, ordering
    // every engine/slot write before the owner's (and the next phase's)
    // reads.
    for (size_t i = 0; i < n; ++i) {
        while (sh.done[i].load(std::memory_order_acquire) == 0) {
            std::this_thread::yield();
        }
        apply_ops(sh, sh.items[i].id, sh.ops[i]);
    }
}

void Reactor::steal_loop(size_t self) {
    Shard& me = shards_[self];
    size_t empty_scans = 0;
    // Keep helping until every shard has finished its own round (stragglers
    // may still publish phase-3 work), with a bounded give-up so an idle
    // helper on an oversubscribed box parks at the barrier instead of
    // burning the victim's cycles.
    while (round_fini_.load(std::memory_order_acquire) < shards_.size() &&
           empty_scans < 64) {
        bool got = false;
        for (size_t off = 1; off < shards_.size(); ++off) {
            Shard& victim = shards_[(self + off) % shards_.size()];
            for (;;) {
                int64_t idx = victim.deque.steal();
                if (idx < 0) break;
                execute_item(victim, static_cast<size_t>(idx));
                me.steals.fetch_add(1, std::memory_order_relaxed);
                got = true;
            }
        }
        if (got) {
            empty_scans = 0;
        } else {
            me.steal_failures.fetch_add(1, std::memory_order_relaxed);
            ++empty_scans;
            std::this_thread::yield();
        }
    }
}

void Reactor::run_shard_round(Shard& sh) {
    const bool timed = cfg_.profile_phases;
    uint64_t t0 = timed ? mono_ns() : 0;

    // Phase 0: supervised restarts whose backoff expired by the fleet
    // instant, in (due, instance) order — a pure function of the fault
    // history, independent of worker layout. Shard-owned: restarts touch
    // the wheel and agenda directly and are rare by construction.
    if (!sh.agenda.empty()) {
        sh.due_restarts.clear();
        for (size_t i = 0; i < sh.agenda.size();) {
            if (sh.agenda[i].due <= now_) {
                sh.due_restarts.push_back(sh.agenda[i]);
                sh.agenda[i] = sh.agenda.back();
                sh.agenda.pop_back();
            } else {
                ++i;
            }
        }
        std::sort(sh.due_restarts.begin(), sh.due_restarts.end(),
                  [](const RestartDue& a, const RestartDue& b) {
                      return a.due != b.due ? a.due < b.due : a.instance < b.instance;
                  });
        for (const RestartDue& d : sh.due_restarts) {
            try {
                restart_member(d.instance, sh);
            } catch (const std::exception& ex) {
                Slot& sl = slot(d.instance);
                if (sl.error.empty()) sl.error = ex.what();
            }
        }
    }
    if (timed) {
        uint64_t t1 = mono_ns();
        sh.phase_ns[0] += t1 - t0;
        t0 = t1;
    }

    // Phase 1: events. One atomic exchange empties the mailbox; tickets
    // restore per-instance injection order. The batch is grouped into one
    // stealable item per target instance (groups ordered by their first
    // ticket), each delivering its envelopes in ticket order after lazily
    // syncing the target's clock to the fleet instant (due timers fire
    // first, as they would have under real time). Every envelope releases
    // its inbox seat, delivered or not.
    sh.drained.clear();
    sh.mailbox.drain_into(sh.drained);
    if (!sh.drained.empty()) {
        // Group by instance, keeping ticket order inside each group.
        std::sort(sh.drained.begin(), sh.drained.end(),
                  [](const Envelope* a, const Envelope* b) {
                      return a->instance != b->instance ? a->instance < b->instance
                                                        : a->ticket < b->ticket;
                  });
        sh.groups.clear();
        for (uint32_t k = 0; k < sh.drained.size();) {
            uint32_t begin = k;
            InstanceId id = sh.drained[k]->instance;
            while (k < sh.drained.size() && sh.drained[k]->instance == id) ++k;
            sh.groups.emplace_back(begin, k);
        }
        // Deliver groups in global-injection order of their first event —
        // the closest grouped equivalent of the old strict ticket replay
        // (cross-instance order only affects diagnostics; instances are
        // independent).
        std::sort(sh.groups.begin(), sh.groups.end(),
                  [&sh](const std::pair<uint32_t, uint32_t>& a,
                        const std::pair<uint32_t, uint32_t>& b) {
                      return sh.drained[a.first]->ticket < sh.drained[b.first]->ticket;
                  });
        sh.items.clear();
        for (const auto& [begin, end] : sh.groups) {
            sh.items.push_back({sh.drained[begin]->instance, begin, end, 1});
        }
        run_items(sh, sh.items.size());
    }
    if (timed) {
        uint64_t t1 = mono_ns();
        sh.phase_ns[1] += t1 - t0;
        t0 = t1;
    }

    // Phase 2: timers. Candidates come out sorted by (deadline, instance);
    // stale ones (engine re-armed or disarmed since indexing) reduce to a
    // no-op sync plus a re-index. Shard-owned: wheel pops are not worth a
    // claim protocol, and the wheel itself is owner-only state.
    sh.due.clear();
    sh.wheel.collect_due(now_, sh.due);
    for (const FleetTimerWheel::Due& d : sh.due) {
        Slot& sl = slot(d.instance);
        if (sl.indexed_deadline == d.deadline) sl.indexed_deadline = -1;
        if (!sl.booted || sl.retired.load(std::memory_order_relaxed)) continue;
        try {
            sync_clock(sl);
            sh.local_ops.clear();
            after_reaction(d.instance, sl, sh.local_ops);
            apply_ops(sh, d.instance, sh.local_ops);
        } catch (const std::exception& ex) {
            if (sl.error.empty()) sl.error = ex.what();
        }
    }
    if (timed) {
        uint64_t t1 = mono_ns();
        sh.phase_ns[2] += t1 - t0;
        t0 = t1;
    }

    // Phase 3: asyncs. Every async-live member gets a bounded slice
    // allowance; the per-instance allowance is fixed per round, so an
    // instance's async progress is a function of rounds elapsed — not of
    // which shard, worker, or thief it landed on. One stealable item per
    // member, in the listing order.
    sh.async_scratch.clear();
    sh.async_scratch.swap(sh.async_live);
    if (!sh.async_scratch.empty()) {
        sh.items.clear();
        for (InstanceId id : sh.async_scratch) {
            sh.items.push_back({id, 0, 0, 3});
        }
        run_items(sh, sh.items.size());
    }
    if (timed) {
        sh.phase_ns[3] += mono_ns() - t0;
    }

    sh.work_left = !sh.async_live.empty() || shard_has_due_restart(sh) ||
                   (sh.wheel.next_deadline() >= 0 && sh.wheel.next_deadline() <= now_);
}

// -- worker pool --------------------------------------------------------------

void Reactor::dispatch(Cmd cmd) {
    if (threads_.empty()) {
        for (Shard& sh : shards_) {
            if (cmd == Cmd::Boot) {
                boot_shard(sh);
            } else {
                run_shard_round(sh);
            }
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lk(pool_mu_);
        cmd_ = cmd;
        done_count_ = 0;
        round_fini_.store(0, std::memory_order_relaxed);
        ++generation_;
    }
    pool_cv_.notify_all();
    std::unique_lock<std::mutex> lk(pool_mu_);
    done_cv_.wait(lk, [this] { return done_count_ == threads_.size(); });
}

void Reactor::worker_main(size_t shard_idx) {
    if (cfg_.pin_workers) pin_self_to_allowed_cpu(shard_idx);
    uint64_t seen = 0;
    for (;;) {
        Cmd cmd;
        {
            std::unique_lock<std::mutex> lk(pool_mu_);
            pool_cv_.wait(lk, [&] { return generation_ != seen; });
            seen = generation_;
            cmd = cmd_;
        }
        if (cmd == Cmd::Exit) return;
        Shard& sh = shards_[shard_idx];
        if (cmd == Cmd::Boot) {
            boot_shard(sh);
        } else {
            run_shard_round(sh);
            round_fini_.fetch_add(1, std::memory_order_acq_rel);
            if (stealing_) steal_loop(shard_idx);
        }
        {
            std::lock_guard<std::mutex> lk(pool_mu_);
            if (++done_count_ == threads_.size()) done_cv_.notify_one();
        }
    }
}

// -- introspection ------------------------------------------------------------

host::Instance& Reactor::instance(InstanceId id) {
    check_id(id);
    return *slot(id).inst;
}

const host::Instance& Reactor::instance(InstanceId id) const {
    check_id(id);
    return *slot(id).inst;
}

obs::ProcessStats Reactor::fleet_stats() const {
    obs::ProcessStats total;
    size_t n = published_.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) {
        const Slot& sl = slot(static_cast<InstanceId>(i));
        obs::ProcessStats s = sl.inst->snapshot();
        // Supervision counters live on the reactor, not the engine; stamp
        // them onto the member's snapshot so one merge covers both.
        s.checkpoints += sl.sup.checkpoints;
        s.restores += sl.sup.restores;
        s.supervised_restarts += sl.sup.supervised_restarts;
        s.quarantines += sl.sup.quarantined ? 1 : 0;
        s.sheds += sl.sheds.load(std::memory_order_relaxed);
        // Raw faults come from the supervisor's lifetime count, not the
        // recorder: restoring a checkpoint rewinds the recorder to the
        // pre-fault timeline, which would erase the fault it recovered
        // from. The supervisor never forgets one.
        s.faults = std::max(s.faults, sl.sup.faults);
        total.merge(s);
    }
    // Scheduler diagnostics are per-shard, not per-instance: stamped once
    // here. clear_measured() drops all of them (they depend on worker
    // count and thread timing).
    for (const Shard& sh : shards_) {
        total.steals += sh.steals.load(std::memory_order_relaxed);
        total.steal_failures += sh.steal_failures.load(std::memory_order_relaxed);
        total.arena_bytes += sh.pool.reserved_bytes() + sh.wheel_arena.reserved_bytes();
        for (size_t k = 0; k < sh.phase_ns.size(); ++k) {
            total.phase_ns[k] += sh.phase_ns[k];
        }
    }
    return total;
}

const std::string& Reactor::error(InstanceId id) const {
    check_id(id);
    return slot(id).error;
}

}  // namespace ceu::reactor
