#include "reactor/reactor.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ceu::reactor {

namespace {
uint64_t splitmix64(uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}
}  // namespace

Reactor::Reactor(ReactorConfig cfg)
    : cfg_(cfg), shards_(std::max<size_t>(1, cfg.workers)) {
    for (Shard& sh : shards_) {
        sh.wheel = FleetTimerWheel(cfg_.timer_granularity);
    }
    if (shards_.size() > 1) {
        threads_.reserve(shards_.size());
        for (size_t i = 0; i < shards_.size(); ++i) {
            threads_.emplace_back(&Reactor::worker_main, this, i);
        }
    }
}

Reactor::~Reactor() {
    if (!threads_.empty()) {
        {
            std::lock_guard<std::mutex> lk(pool_mu_);
            cmd_ = Cmd::Exit;
            ++generation_;
        }
        pool_cv_.notify_all();
        for (std::thread& t : threads_) t.join();
    }
    for (std::atomic<Slot*>& c : chunks_) {
        delete[] c.load(std::memory_order_relaxed);
    }
}

// -- fleet construction -------------------------------------------------------

void Reactor::check_id(InstanceId id) const {
    if (static_cast<size_t>(id) >= published_.load(std::memory_order_acquire)) {
        throw std::out_of_range("reactor: unknown instance id");
    }
}

InstanceId Reactor::add_slot(std::shared_ptr<const flat::CompiledProgram> cp,
                             host::Config hcfg) {
    size_t idx = published_.load(std::memory_order_relaxed);
    if (idx >= kMaxChunks * kChunkSize) {
        throw std::length_error("reactor: instance table full");
    }
    size_t c = idx >> kChunkShift;
    Slot* chunk = chunks_[c].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
        chunk = new Slot[kChunkSize];
        chunks_[c].store(chunk, std::memory_order_release);
    }
    Slot& sl = chunk[idx & kChunkMask];
    hcfg.collect_trace = cfg_.collect_traces;
    sl.inst = std::make_unique<host::Instance>(std::move(cp), hcfg);
    if (cfg_.observe_stats) sl.inst->observe_stats();
    sl.policy = cfg_.supervise;
    InstanceId id = static_cast<InstanceId>(idx);
    Shard& sh = shards_[id % shards_.size()];
    sh.members.push_back(id);
    sh.schedule_dirty = true;
    // Publish *after* the slot is fully constructed: a concurrent
    // injector that reads the new size (acquire) sees a complete slot.
    published_.store(idx + 1, std::memory_order_release);
    return id;
}

InstanceId Reactor::add_instance(std::shared_ptr<const flat::CompiledProgram> cp) {
    host::Config hcfg;
    hcfg.engine = cfg_.engine;
    return add_slot(std::move(cp), hcfg);
}

InstanceId Reactor::add_instance(std::shared_ptr<const flat::CompiledProgram> cp,
                                 host::Config hcfg) {
    return add_slot(std::move(cp), hcfg);
}

void Reactor::retire(InstanceId id) {
    check_id(id);
    slot(id).retired.store(true, std::memory_order_release);
}

bool Reactor::retired(InstanceId id) const {
    check_id(id);
    return slot(id).retired.load(std::memory_order_acquire);
}

void Reactor::set_policy(InstanceId id, const SupervisorPolicy& policy) {
    check_id(id);
    Slot& sl = slot(id);
    sl.policy = policy;
    // Cadence re-derives from the next reaction boundary (lazy init in
    // after_reaction); dropping the old threshold makes that happen.
    sl.sup.next_checkpoint_at = 0;
}

const MemberState& Reactor::supervision(InstanceId id) const {
    check_id(id);
    return slot(id).sup;
}

void Reactor::refresh_schedule(Shard& sh, size_t shard_idx) {
    sh.schedule = sh.members;
    uint64_t s = cfg_.seed ^ (0xa0761d6478bd642fULL * (shard_idx + 1));
    for (size_t i = sh.schedule.size(); i > 1; --i) {
        size_t j = static_cast<size_t>(splitmix64(s) % i);
        std::swap(sh.schedule[i - 1], sh.schedule[j]);
    }
    sh.schedule_dirty = false;
}

void Reactor::boot() {
    for (size_t i = 0; i < shards_.size(); ++i) {
        if (shards_[i].schedule_dirty) refresh_schedule(shards_[i], i);
    }
    dispatch(Cmd::Boot);
}

void Reactor::boot_shard(Shard& sh) {
    for (InstanceId id : sh.schedule) {
        Slot& sl = slot(id);
        if (sl.booted || sl.retired.load(std::memory_order_relaxed)) continue;
        sl.booted = true;
        try {
            sl.inst->advance_to(now_);  // late joiners boot at the fleet instant
            sl.inst->boot();
            after_reaction(id, sl, sh);
        } catch (const std::exception& ex) {
            sl.error = ex.what();
        }
    }
    sh.work_left = !sh.async_live.empty() || shard_has_due_restart(sh) ||
                   (sh.wheel.next_deadline() >= 0 && sh.wheel.next_deadline() <= now_);
}

// -- inputs -------------------------------------------------------------------

InjectResult Reactor::inject(InstanceId id, EventId event, rt::Value v) {
    check_id(id);
    Slot& sl = slot(id);
    if (sl.retired.load(std::memory_order_acquire)) {
        return {InjectResult::Status::Retired, 0};
    }
    // Reserve an inbox seat before allocating anything: capacity is
    // enforced at the producer, so a flooded member sheds here instead of
    // growing its mailbox without bound. The seat is released by the
    // draining shard, one per envelope.
    uint32_t prev = sl.inbox_depth.fetch_add(1, std::memory_order_acq_rel);
    if (cfg_.inbox_capacity > 0 && prev >= cfg_.inbox_capacity) {
        sl.inbox_depth.fetch_sub(1, std::memory_order_relaxed);
        sl.sheds.fetch_add(1, std::memory_order_relaxed);
        // The shed occurrence consumes a ticket: accepted tickets keep
        // their total order, and the rejected caller learns which ordinal
        // was dropped.
        uint64_t t = ticket_.fetch_add(1, std::memory_order_relaxed);
        return {InjectResult::Status::Shed, t};
    }
    Envelope* e = new Envelope;
    e->instance = id;
    e->event = event;
    e->value = v;
    // push() transfers ownership: a worker draining mid-round may consume
    // and free the envelope immediately, so the ticket must be returned
    // from a local, never read back through e.
    uint64_t t = ticket_.fetch_add(1, std::memory_order_relaxed);
    e->ticket = t;
    shards_[id % shards_.size()].mailbox.push(e);
    return {InjectResult::Status::Accepted, t};
}

InjectResult Reactor::inject(InstanceId id, const std::string& event, rt::Value v) {
    check_id(id);
    // resolve_input only reads the instance's immutable compiled program,
    // so the name path stays as thread-safe as the id path.
    EventId ev = slot(id).inst->resolve_input(event);
    if (ev == kNoEvent) return {InjectResult::Status::UnknownEvent, 0};
    return inject(id, ev, v);
}

void Reactor::advance(Micros delta) {
    if (delta > 0) now_ += delta;
    run_round();
}

// -- rounds -------------------------------------------------------------------

void Reactor::run_round() {
    for (size_t i = 0; i < shards_.size(); ++i) {
        if (shards_[i].schedule_dirty) refresh_schedule(shards_[i], i);
    }
    dispatch(Cmd::Round);
    if (on_round_end) on_round_end();
}

bool Reactor::work_pending() const {
    for (const Shard& sh : shards_) {
        if (sh.work_left || !sh.mailbox.empty()) return true;
    }
    return false;
}

size_t Reactor::drain(size_t max_rounds) {
    size_t rounds = 0;
    while (rounds < max_rounds && work_pending()) {
        run_round();
        ++rounds;
    }
    return rounds;
}

std::vector<Reactor::DrainedMember> Reactor::drain_and_checkpoint(size_t max_rounds) {
    drain(max_rounds);
    std::vector<DrainedMember> out;
    size_t n = published_.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) {
        const Slot& sl = slot(static_cast<InstanceId>(i));
        if (!sl.booted || sl.retired.load(std::memory_order_relaxed)) continue;
        rt::Engine::Status st = sl.inst->status();
        if (st != rt::Engine::Status::Running && st != rt::Engine::Status::Faulted) {
            continue;  // Terminated (or never-ran) members have nothing to resume
        }
        out.push_back({static_cast<InstanceId>(i), sl.inst->save()});
    }
    return out;
}

Micros Reactor::next_restart_due() const {
    Micros best = -1;
    for (const Shard& sh : shards_) {
        for (const RestartDue& d : sh.agenda) {
            if (best < 0 || d.due < best) best = d.due;
        }
    }
    return best;
}

void Reactor::sync_clock(Slot& sl) { sl.inst->advance_to(now_); }

// -- supervision --------------------------------------------------------------

void Reactor::on_member_fault(InstanceId id, Slot& sl, Shard& sh) {
    sl.sup.fault_open = true;
    uint64_t tick = cfg_.timer_granularity > 0
                        ? static_cast<uint64_t>(now_ / cfg_.timer_granularity)
                        : static_cast<uint64_t>(now_);
    size_t in_window = note_fault_tick(sl.sup, sl.policy, tick);
    if (sl.policy.quarantine_after > 0 &&
        in_window >= sl.policy.quarantine_after) {
        sl.sup.quarantined = true;
        sl.inst->note("[supervisor] quarantined after " +
                      std::to_string(sl.sup.faults) + " faults");
        return;
    }
    if (sl.policy.restart == SupervisorPolicy::Restart::Park) return;
    Micros delay = backoff_delay_us(sl.policy, cfg_.seed, id, sl.sup.faults,
                                    cfg_.timer_granularity);
    sh.agenda.push_back({now_ + delay, id});
}

void Reactor::restart_member(InstanceId id, Shard& sh) {
    Slot& sl = slot(id);
    if (sl.retired.load(std::memory_order_relaxed) || sl.sup.quarantined) return;
    if (sl.inst->status() != rt::Engine::Status::Faulted) return;
    host::Instance& inst = *sl.inst;
    if (sl.policy.restart == SupervisorPolicy::Restart::Restore &&
        !sl.sup.checkpoint.empty()) {
        inst.load(sl.sup.checkpoint);
        ++sl.sup.restores;
        inst.note("[supervisor] restored from checkpoint (fault " +
                  std::to_string(sl.sup.faults) + ")");
        // Catch the restored clock up to the fleet instant: timers that
        // came due between the checkpoint and now fire immediately, in
        // deadline order, exactly as for a late joiner.
        inst.advance_to(now_);
    } else {
        inst.reset();
        inst.advance_to(now_);  // reboot at the fleet instant, not the epoch
        inst.note("[supervisor] rebooted (fault " +
                  std::to_string(sl.sup.faults) + ")");
        inst.boot();
    }
    ++sl.sup.supervised_restarts;
    sl.sup.fault_open = false;
    sl.sup.next_checkpoint_at = 0;  // cadence restarts from the new state
    sl.indexed_deadline = -1;       // wheel entries from the old life are stale
    after_reaction(id, sl, sh);
}

void Reactor::restart(InstanceId id) {
    check_id(id);
    Slot& sl = slot(id);
    if (sl.retired.load(std::memory_order_acquire)) return;
    Shard& sh = shards_[id % shards_.size()];
    sl.inst->advance_to(now_);  // crash happens at the fleet instant
    sl.inst->power_cycle();
    sl.booted = true;
    sl.sup.fault_open = false;
    sl.sup.next_checkpoint_at = 0;
    sl.indexed_deadline = -1;  // wheel entries from the old life are stale
    after_reaction(id, sl, sh);
}

bool Reactor::shard_has_due_restart(const Shard& sh) const {
    for (const RestartDue& d : sh.agenda) {
        if (d.due <= now_) return true;
    }
    return false;
}

void Reactor::after_reaction(InstanceId id, Slot& sl, Shard& sh) {
    // Backend-neutral gauges: interpreted and AOT-compiled members expose
    // the same status/reactions/deadline/async surface through Instance.
    const host::Instance& inst = *sl.inst;
    if (inst.status() == rt::Engine::Status::Faulted) {
        // Parked (or awaiting its scheduled restart): a Faulted engine
        // ignores go_time/go_event, so keeping its deadline in the wheel
        // would make the shard re-collect a dead entry every round.
        if (!sl.sup.fault_open) on_member_fault(id, sl, sh);
        return;
    }
    if (sl.policy.checkpoint_every > 0 &&
        inst.status() == rt::Engine::Status::Running) {
        if (sl.sup.next_checkpoint_at == 0) {
            sl.sup.next_checkpoint_at = inst.reactions() + sl.policy.checkpoint_every;
        } else if (inst.reactions() >= sl.sup.next_checkpoint_at) {
            sl.sup.checkpoint = sl.inst->save();
            ++sl.sup.checkpoints;
            sl.sup.next_checkpoint_at = inst.reactions() + sl.policy.checkpoint_every;
        }
    }
    Micros d = inst.next_timer_deadline();
    if (d >= 0 && d != sl.indexed_deadline) {
        sh.wheel.schedule(id, d);
        sl.indexed_deadline = d;
    }
    if (!sl.async_listed && inst.status() == rt::Engine::Status::Running &&
        inst.has_async_work()) {
        sh.async_live.push_back(id);
        sl.async_listed = true;
    }
}

void Reactor::run_shard_round(Shard& sh) {
    // Phase 0: supervised restarts whose backoff expired by the fleet
    // instant, in (due, instance) order — a pure function of the fault
    // history, independent of worker layout.
    if (!sh.agenda.empty()) {
        sh.due_restarts.clear();
        for (size_t i = 0; i < sh.agenda.size();) {
            if (sh.agenda[i].due <= now_) {
                sh.due_restarts.push_back(sh.agenda[i]);
                sh.agenda[i] = sh.agenda.back();
                sh.agenda.pop_back();
            } else {
                ++i;
            }
        }
        std::sort(sh.due_restarts.begin(), sh.due_restarts.end(),
                  [](const RestartDue& a, const RestartDue& b) {
                      return a.due != b.due ? a.due < b.due : a.instance < b.instance;
                  });
        for (const RestartDue& d : sh.due_restarts) {
            try {
                restart_member(d.instance, sh);
            } catch (const std::exception& ex) {
                Slot& sl = slot(d.instance);
                if (sl.error.empty()) sl.error = ex.what();
            }
        }
    }

    // Phase 1: events. One atomic exchange empties the mailbox; tickets
    // restore global injection order; each target is brought to the fleet
    // instant before delivery so due timers fire first, as they would have
    // under real time. Every envelope releases its inbox seat, delivered
    // or not.
    sh.drained.clear();
    sh.mailbox.drain_into(sh.drained);
    for (Envelope* e : sh.drained) {
        Slot& sl = slot(e->instance);
        sl.inbox_depth.fetch_sub(1, std::memory_order_relaxed);
        if (sl.booted && !sl.retired.load(std::memory_order_relaxed)) {
            try {
                sync_clock(sl);
                sl.inst->inject(static_cast<int>(e->event), e->value);
                after_reaction(e->instance, sl, sh);
            } catch (const std::exception& ex) {
                if (sl.error.empty()) sl.error = ex.what();
            }
        }
        delete e;
    }

    // Phase 2: timers. Candidates come out sorted by (deadline, instance);
    // stale ones (engine re-armed or disarmed since indexing) reduce to a
    // no-op sync plus a re-index.
    sh.due.clear();
    sh.wheel.collect_due(now_, sh.due);
    for (const FleetTimerWheel::Due& d : sh.due) {
        Slot& sl = slot(d.instance);
        if (sl.indexed_deadline == d.deadline) sl.indexed_deadline = -1;
        if (!sl.booted || sl.retired.load(std::memory_order_relaxed)) continue;
        try {
            sync_clock(sl);
            after_reaction(d.instance, sl, sh);
        } catch (const std::exception& ex) {
            if (sl.error.empty()) sl.error = ex.what();
        }
    }

    // Phase 3: asyncs. Every async-live member gets a bounded slice
    // allowance; the per-instance allowance is fixed per round, so an
    // instance's async progress is a function of rounds elapsed — not of
    // which shard or worker it landed on.
    sh.async_scratch.clear();
    sh.async_scratch.swap(sh.async_live);
    for (InstanceId id : sh.async_scratch) {
        Slot& sl = slot(id);
        sl.async_listed = false;
        if (sl.retired.load(std::memory_order_relaxed)) continue;
        try {
            if (cfg_.async_slices_per_round > 0) {
                // One batched call per member per round: a compiled backend
                // crosses the ABI once for the whole budget instead of once
                // per slice. Both backends stop early on their own when the
                // program leaves Running or the async queue drains.
                sl.inst->run_async_slices(cfg_.async_slices_per_round);
            }
            after_reaction(id, sl, sh);
        } catch (const std::exception& ex) {
            if (sl.error.empty()) sl.error = ex.what();
        }
    }

    sh.work_left = !sh.async_live.empty() || shard_has_due_restart(sh) ||
                   (sh.wheel.next_deadline() >= 0 && sh.wheel.next_deadline() <= now_);
}

// -- worker pool --------------------------------------------------------------

void Reactor::dispatch(Cmd cmd) {
    if (threads_.empty()) {
        for (Shard& sh : shards_) {
            if (cmd == Cmd::Boot) {
                boot_shard(sh);
            } else {
                run_shard_round(sh);
            }
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lk(pool_mu_);
        cmd_ = cmd;
        done_count_ = 0;
        ++generation_;
    }
    pool_cv_.notify_all();
    std::unique_lock<std::mutex> lk(pool_mu_);
    done_cv_.wait(lk, [this] { return done_count_ == threads_.size(); });
}

void Reactor::worker_main(size_t shard_idx) {
    uint64_t seen = 0;
    for (;;) {
        Cmd cmd;
        {
            std::unique_lock<std::mutex> lk(pool_mu_);
            pool_cv_.wait(lk, [&] { return generation_ != seen; });
            seen = generation_;
            cmd = cmd_;
        }
        if (cmd == Cmd::Exit) return;
        Shard& sh = shards_[shard_idx];
        if (cmd == Cmd::Boot) {
            boot_shard(sh);
        } else {
            run_shard_round(sh);
        }
        {
            std::lock_guard<std::mutex> lk(pool_mu_);
            if (++done_count_ == threads_.size()) done_cv_.notify_one();
        }
    }
}

// -- introspection ------------------------------------------------------------

host::Instance& Reactor::instance(InstanceId id) {
    check_id(id);
    return *slot(id).inst;
}

const host::Instance& Reactor::instance(InstanceId id) const {
    check_id(id);
    return *slot(id).inst;
}

obs::ProcessStats Reactor::fleet_stats() const {
    obs::ProcessStats total;
    size_t n = published_.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) {
        const Slot& sl = slot(static_cast<InstanceId>(i));
        obs::ProcessStats s = sl.inst->snapshot();
        // Supervision counters live on the reactor, not the engine; stamp
        // them onto the member's snapshot so one merge covers both.
        s.checkpoints += sl.sup.checkpoints;
        s.restores += sl.sup.restores;
        s.supervised_restarts += sl.sup.supervised_restarts;
        s.quarantines += sl.sup.quarantined ? 1 : 0;
        s.sheds += sl.sheds.load(std::memory_order_relaxed);
        // Raw faults come from the supervisor's lifetime count, not the
        // recorder: restoring a checkpoint rewinds the recorder to the
        // pre-fault timeline, which would erase the fault it recovered
        // from. The supervisor never forgets one.
        s.faults = std::max(s.faults, sl.sup.faults);
        total.merge(s);
    }
    return total;
}

const std::string& Reactor::error(InstanceId id) const {
    check_id(id);
    return slot(id).error;
}

}  // namespace ceu::reactor
