#include "reactor/reactor.hpp"

#include <algorithm>
#include <stdexcept>

namespace ceu::reactor {

namespace {
uint64_t splitmix64(uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}
}  // namespace

Reactor::Reactor(ReactorConfig cfg)
    : cfg_(cfg), shards_(std::max<size_t>(1, cfg.workers)) {
    for (Shard& sh : shards_) {
        sh.wheel = FleetTimerWheel(cfg_.timer_granularity);
    }
    if (shards_.size() > 1) {
        threads_.reserve(shards_.size());
        for (size_t i = 0; i < shards_.size(); ++i) {
            threads_.emplace_back(&Reactor::worker_main, this, i);
        }
    }
}

Reactor::~Reactor() {
    if (!threads_.empty()) {
        {
            std::lock_guard<std::mutex> lk(pool_mu_);
            cmd_ = Cmd::Exit;
            ++generation_;
        }
        pool_cv_.notify_all();
        for (std::thread& t : threads_) t.join();
    }
}

// -- fleet construction -------------------------------------------------------

InstanceId Reactor::add_slot(std::shared_ptr<const flat::CompiledProgram> cp,
                             host::Config hcfg) {
    InstanceId id = static_cast<InstanceId>(slots_.size());
    hcfg.collect_trace = cfg_.collect_traces;
    Slot sl;
    sl.inst = std::make_unique<host::Instance>(std::move(cp), hcfg);
    if (cfg_.observe_stats) sl.inst->observe_stats();
    slots_.push_back(std::move(sl));
    Shard& sh = shards_[id % shards_.size()];
    sh.members.push_back(id);
    sh.schedule_dirty = true;
    return id;
}

InstanceId Reactor::add_instance(std::shared_ptr<const flat::CompiledProgram> cp) {
    host::Config hcfg;
    hcfg.engine = cfg_.engine;
    return add_slot(std::move(cp), hcfg);
}

InstanceId Reactor::add_instance(std::shared_ptr<const flat::CompiledProgram> cp,
                                 host::Config hcfg) {
    return add_slot(std::move(cp), hcfg);
}

void Reactor::refresh_schedule(Shard& sh, size_t shard_idx) {
    sh.schedule = sh.members;
    uint64_t s = cfg_.seed ^ (0xa0761d6478bd642fULL * (shard_idx + 1));
    for (size_t i = sh.schedule.size(); i > 1; --i) {
        size_t j = static_cast<size_t>(splitmix64(s) % i);
        std::swap(sh.schedule[i - 1], sh.schedule[j]);
    }
    sh.schedule_dirty = false;
}

void Reactor::boot() {
    for (size_t i = 0; i < shards_.size(); ++i) {
        if (shards_[i].schedule_dirty) refresh_schedule(shards_[i], i);
    }
    dispatch(Cmd::Boot);
}

void Reactor::boot_shard(Shard& sh) {
    for (InstanceId id : sh.schedule) {
        Slot& sl = slots_[id];
        if (sl.booted) continue;
        sl.booted = true;
        try {
            sl.inst->advance_to(now_);  // late joiners boot at the fleet instant
            sl.inst->boot();
            after_reaction(id, sl, sh);
        } catch (const std::exception& ex) {
            sl.error = ex.what();
        }
    }
    sh.work_left = !sh.async_live.empty() ||
                   (sh.wheel.next_deadline() >= 0 && sh.wheel.next_deadline() <= now_);
}

// -- inputs -------------------------------------------------------------------

uint64_t Reactor::inject(InstanceId id, EventId event, rt::Value v) {
    if (id >= slots_.size()) {
        throw std::out_of_range("reactor: inject into unknown instance id");
    }
    Envelope* e = new Envelope;
    e->instance = id;
    e->event = event;
    e->value = v;
    // push() transfers ownership: a worker draining mid-round may consume
    // and free the envelope immediately, so the ticket must be returned
    // from a local, never read back through e.
    uint64_t t = ticket_.fetch_add(1, std::memory_order_relaxed);
    e->ticket = t;
    shards_[id % shards_.size()].mailbox.push(e);
    return t;
}

bool Reactor::inject(InstanceId id, const std::string& event, rt::Value v) {
    if (id >= slots_.size()) {
        throw std::out_of_range("reactor: inject into unknown instance id");
    }
    // resolve_input only reads the instance's immutable compiled program,
    // so the name path stays as thread-safe as the id path.
    EventId ev = slots_[id].inst->resolve_input(event);
    if (ev == kNoEvent) return false;
    inject(id, ev, v);
    return true;
}

void Reactor::advance(Micros delta) {
    if (delta > 0) now_ += delta;
    run_round();
}

// -- rounds -------------------------------------------------------------------

void Reactor::run_round() {
    for (size_t i = 0; i < shards_.size(); ++i) {
        if (shards_[i].schedule_dirty) refresh_schedule(shards_[i], i);
    }
    dispatch(Cmd::Round);
}

size_t Reactor::drain(size_t max_rounds) {
    size_t rounds = 0;
    while (rounds < max_rounds) {
        bool pending = false;
        for (const Shard& sh : shards_) {
            if (sh.work_left || !sh.mailbox.empty()) {
                pending = true;
                break;
            }
        }
        if (!pending) break;
        run_round();
        ++rounds;
    }
    return rounds;
}

void Reactor::sync_clock(Slot& sl) { sl.inst->advance_to(now_); }

void Reactor::after_reaction(InstanceId id, Slot& sl, Shard& sh) {
    const rt::Engine& eng = sl.inst->engine();
    Micros d = eng.next_timer_deadline();
    if (d >= 0 && d != sl.indexed_deadline) {
        sh.wheel.schedule(id, d);
        sl.indexed_deadline = d;
    }
    if (!sl.async_listed && eng.status() == rt::Engine::Status::Running &&
        eng.has_async_work()) {
        sh.async_live.push_back(id);
        sl.async_listed = true;
    }
}

void Reactor::run_shard_round(Shard& sh) {
    // Phase 1: events. One atomic exchange empties the mailbox; tickets
    // restore global injection order; each target is brought to the fleet
    // instant before delivery so due timers fire first, as they would have
    // under real time.
    sh.drained.clear();
    sh.mailbox.drain_into(sh.drained);
    for (Envelope* e : sh.drained) {
        Slot& sl = slots_[e->instance];
        if (sl.booted) {
            try {
                sync_clock(sl);
                sl.inst->inject(static_cast<int>(e->event), e->value);
                after_reaction(e->instance, sl, sh);
            } catch (const std::exception& ex) {
                if (sl.error.empty()) sl.error = ex.what();
            }
        }
        delete e;
    }

    // Phase 2: timers. Candidates come out sorted by (deadline, instance);
    // stale ones (engine re-armed or disarmed since indexing) reduce to a
    // no-op sync plus a re-index.
    sh.due.clear();
    sh.wheel.collect_due(now_, sh.due);
    for (const FleetTimerWheel::Due& d : sh.due) {
        Slot& sl = slots_[d.instance];
        if (sl.indexed_deadline == d.deadline) sl.indexed_deadline = -1;
        if (!sl.booted) continue;
        try {
            sync_clock(sl);
            after_reaction(d.instance, sl, sh);
        } catch (const std::exception& ex) {
            if (sl.error.empty()) sl.error = ex.what();
        }
    }

    // Phase 3: asyncs. Every async-live member gets a bounded slice
    // allowance; the per-instance allowance is fixed per round, so an
    // instance's async progress is a function of rounds elapsed — not of
    // which shard or worker it landed on.
    sh.async_scratch.clear();
    sh.async_scratch.swap(sh.async_live);
    for (InstanceId id : sh.async_scratch) {
        Slot& sl = slots_[id];
        sl.async_listed = false;
        try {
            for (uint64_t k = 0; k < cfg_.async_slices_per_round; ++k) {
                if (sl.inst->status() != rt::Engine::Status::Running) break;
                if (!sl.inst->step_async()) break;
            }
            after_reaction(id, sl, sh);
        } catch (const std::exception& ex) {
            if (sl.error.empty()) sl.error = ex.what();
        }
    }

    sh.work_left = !sh.async_live.empty() ||
                   (sh.wheel.next_deadline() >= 0 && sh.wheel.next_deadline() <= now_);
}

// -- worker pool --------------------------------------------------------------

void Reactor::dispatch(Cmd cmd) {
    if (threads_.empty()) {
        for (Shard& sh : shards_) {
            if (cmd == Cmd::Boot) {
                boot_shard(sh);
            } else {
                run_shard_round(sh);
            }
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lk(pool_mu_);
        cmd_ = cmd;
        done_count_ = 0;
        ++generation_;
    }
    pool_cv_.notify_all();
    std::unique_lock<std::mutex> lk(pool_mu_);
    done_cv_.wait(lk, [this] { return done_count_ == threads_.size(); });
}

void Reactor::worker_main(size_t shard_idx) {
    uint64_t seen = 0;
    for (;;) {
        Cmd cmd;
        {
            std::unique_lock<std::mutex> lk(pool_mu_);
            pool_cv_.wait(lk, [&] { return generation_ != seen; });
            seen = generation_;
            cmd = cmd_;
        }
        if (cmd == Cmd::Exit) return;
        Shard& sh = shards_[shard_idx];
        if (cmd == Cmd::Boot) {
            boot_shard(sh);
        } else {
            run_shard_round(sh);
        }
        {
            std::lock_guard<std::mutex> lk(pool_mu_);
            if (++done_count_ == threads_.size()) done_cv_.notify_one();
        }
    }
}

// -- introspection ------------------------------------------------------------

host::Instance& Reactor::instance(InstanceId id) {
    if (id >= slots_.size()) throw std::out_of_range("reactor: unknown instance id");
    return *slots_[id].inst;
}

const host::Instance& Reactor::instance(InstanceId id) const {
    if (id >= slots_.size()) throw std::out_of_range("reactor: unknown instance id");
    return *slots_[id].inst;
}

obs::ProcessStats Reactor::fleet_stats() const {
    obs::ProcessStats total;
    for (const Slot& sl : slots_) {
        total.merge(sl.inst->snapshot());
    }
    return total;
}

const std::string& Reactor::error(InstanceId id) const {
    if (id >= slots_.size()) throw std::out_of_range("reactor: unknown instance id");
    return slots_[id].error;
}

}  // namespace ceu::reactor
