// The shed/retire vocabulary, in one place.
//
// A fleet rejects input for exactly four reasons, and every layer that
// reports a rejection — `Reactor::inject()` (the in-process API), the
// `CEUWIRE1` InjectReply frame (the network API), and the JSON the CLI
// tools print — speaks this enum. The numeric values are part of the wire
// protocol (InjectReply carries them as a u8) and must never be reordered;
// new verdicts append.
#pragma once

#include <cstdint>

namespace ceu::reactor {

/// Why one occurrence of an input event was accepted or refused.
enum class Verdict : uint8_t {
    Accepted = 0,      ///< queued; will deliver next round in ticket order
    Shed = 1,          ///< inbox over capacity: dropped at the producer
    Retired = 2,       ///< target was retired; no longer accepts input
    UnknownEvent = 3,  ///< name variant only: not an input of the program
};

/// Stable lower-case spelling shared by logs, JSON and the client tools.
[[nodiscard]] constexpr const char* verdict_name(Verdict v) {
    switch (v) {
        case Verdict::Accepted: return "accepted";
        case Verdict::Shed: return "shed";
        case Verdict::Retired: return "retired";
        case Verdict::UnknownEvent: return "unknown-event";
    }
    return "?";
}

/// True iff `raw` is a defined Verdict value — the wire decoder's guard
/// against corrupt reply frames.
[[nodiscard]] constexpr bool verdict_valid(uint8_t raw) {
    return raw <= static_cast<uint8_t>(Verdict::UnknownEvent);
}

/// Verdict of one inject() call. `ticket` is the global injection ordinal
/// and is meaningful for Accepted (the envelope will deliver in ticket
/// order) and Shed (the ticket was consumed by the rejected occurrence, so
/// accepted tickets stay totally ordered); it is 0 for the other verdicts.
struct InjectResult {
    /// Historical spelling: InjectResult::Status::Shed and
    /// reactor::Verdict::Shed are the same enumerator.
    using Status = Verdict;

    Verdict status = Verdict::Accepted;
    uint64_t ticket = 0;

    [[nodiscard]] bool accepted() const { return status == Verdict::Accepted; }
};

}  // namespace ceu::reactor
