#include "reactor/fleet_wheel.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>

namespace ceu::reactor {

FleetTimerWheel::FleetTimerWheel(Micros granularity_us)
    : gran_(granularity_us > 0 ? granularity_us : 1) {
    for (Micros& m : slot_min_) m = -1;
}

FleetTimerWheel::~FleetTimerWheel() {
    for (Bucket& b : slots_) bucket_release(b);
    for (Bucket& b : spare_) bucket_release(b);
}

void FleetTimerWheel::reset(Micros granularity_us, ShardArena* arena) {
    clear();
    for (Bucket& b : slots_) bucket_release(b);
    for (Bucket& b : spare_) bucket_release(b);
    spare_.clear();
    gran_ = granularity_us > 0 ? granularity_us : 1;
    arena_ = arena;
}

void FleetTimerWheel::bucket_release(Bucket& b) {
    if (b.heap) delete[] b.data;  // arena buffers die with the arena
    b = Bucket{};
}

void FleetTimerWheel::bucket_donate(Bucket& b) {
    if (b.cap != 0) spare_.push_back({b.data, 0, b.cap, b.heap});
    b = Bucket{};
}

void FleetTimerWheel::bucket_push(Bucket& b, Entry e) {
    if (b.size == b.cap) {
        uint32_t want = b.cap == 0 ? 8 : b.cap * 2;
        // Best-fit shop in the spare list before allocating: smallest
        // buffer that satisfies the request wins, so a single big donated
        // buffer isn't burned on an 8-entry bucket.
        size_t best = spare_.size();
        for (size_t i = 0; i < spare_.size(); ++i) {
            if (spare_[i].cap >= want &&
                (best == spare_.size() || spare_[i].cap < spare_[best].cap)) {
                best = i;
            }
        }
        Bucket grown;
        if (best != spare_.size()) {
            grown = spare_[best];
            spare_[best] = spare_.back();
            spare_.pop_back();
        } else if (arena_ != nullptr) {
            grown.data = static_cast<Entry*>(arena_->allocate(want * sizeof(Entry)));
            grown.cap = want;
            grown.heap = false;
        } else {
            grown.data = new Entry[want];
            grown.cap = want;
            grown.heap = true;
        }
        for (uint32_t i = 0; i < b.size; ++i) grown.data[i] = b.data[i];
        grown.size = b.size;
        bucket_donate(b);
        b = grown;
    }
    b.data[b.size++] = e;
}

size_t FleetTimerWheel::bucket_of(Micros deadline) const {
    // Level by distance from the epoch: deadlines land in the finest level
    // whose slot width still separates them from their neighbors. The slot
    // index is the relative tick at that level's scale, mod 64 — a pure
    // function of (deadline, epoch), so an entry never needs cascading
    // between rebases: it stays put and is found again by its own slot
    // minimum. Already-due deadlines (<= epoch) clamp to slot 0.
    Micros rel = deadline - epoch_;
    uint64_t tick =
        rel <= 0 ? 0 : static_cast<uint64_t>(rel) / static_cast<uint64_t>(gran_);
    int level = 0;
    uint64_t scaled = tick;
    while (level < kLevels - 1 && scaled >= kSlots) {
        scaled >>= 6;
        ++level;
    }
    // At the coarsest level ticks wrap; fine — the slot is just a bucket
    // and expiry checks the exact deadline.
    return static_cast<size_t>(level) * kSlots + static_cast<size_t>(scaled % kSlots);
}

void FleetTimerWheel::schedule(InstanceId instance, Micros deadline) {
    if (deadline < 0) deadline = 0;
    size_t b = bucket_of(deadline);
    bucket_push(slots_[b], {deadline, instance});
    occupied_[b / kSlots] |= (1ULL << (b % kSlots));
    if (slot_min_[b] < 0 || deadline < slot_min_[b]) slot_min_[b] = deadline;
    if (count_ == 0 || deadline < min_) min_ = deadline;
    ++count_;
}

void FleetTimerWheel::maybe_rebase(Micros now) {
    // One full level-1 cycle past the epoch and relative ticks start
    // spilling into needlessly coarse levels; re-bucket the survivors
    // against a fresh epoch. O(count_), but at most once per 64^2 level-0
    // ticks of clock advance — amortized O(1).
    if (now - epoch_ <
        gran_ * static_cast<Micros>(kSlots) * static_cast<Micros>(kSlots)) {
        return;
    }
    std::vector<Entry>& live = rebase_scratch_;
    live.clear();
    live.reserve(count_);
    for (Bucket& b : slots_) {
        live.insert(live.end(), b.data, b.data + b.size);
        bucket_donate(b);  // reschedule below shops these right back
    }
    for (Micros& m : slot_min_) m = -1;
    for (uint64_t& o : occupied_) o = 0;
    min_ = -1;
    count_ = 0;
    epoch_ = now;
    for (const Entry& e : live) schedule(e.instance, e.deadline);
}

size_t FleetTimerWheel::collect_due(Micros now, std::vector<Due>& out) {
    if (count_ == 0) {
        if (now > epoch_) epoch_ = now;  // free rebase: nothing to move
        return 0;
    }
    maybe_rebase(now);
    if (now < min_) return 0;  // the quiescent fast path

    size_t start = out.size();
    Micros new_min = -1;
    for (int level = 0; level < kLevels; ++level) {
        uint64_t bits = occupied_[level];
        while (bits != 0) {
            int s = std::countr_zero(bits);
            bits &= bits - 1;
            size_t b = static_cast<size_t>(level) * kSlots + static_cast<size_t>(s);
            if (slot_min_[b] > now) {
                if (new_min < 0 || slot_min_[b] < new_min) new_min = slot_min_[b];
                continue;  // slot untouched; its entries all lie in the future
            }
            Bucket& v = slots_[b];
            Micros smin = -1;
            uint32_t w = 0;
            for (uint32_t r = 0; r < v.size; ++r) {
                if (v.data[r].deadline <= now) {
                    out.push_back({v.data[r].deadline, v.data[r].instance});
                } else {
                    if (smin < 0 || v.data[r].deadline < smin) smin = v.data[r].deadline;
                    v.data[w++] = v.data[r];
                }
            }
            count_ -= v.size - w;
            v.size = w;
            slot_min_[b] = smin;
            if (w == 0) {
                occupied_[level] &= ~(1ULL << s);
                bucket_donate(v);  // the era has marched past this slot
            }
            if (smin >= 0 && (new_min < 0 || smin < new_min)) new_min = smin;
        }
    }
    min_ = new_min;
    assert((count_ == 0) == (min_ < 0));

    std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end(),
              [](const Due& a, const Due& b) {
                  return a.deadline != b.deadline ? a.deadline < b.deadline
                                                  : a.instance < b.instance;
              });
    return out.size() - start;
}

void FleetTimerWheel::clear() {
    for (Bucket& b : slots_) bucket_donate(b);  // buffers kept, via spare_
    for (Micros& m : slot_min_) m = -1;
    for (uint64_t& o : occupied_) o = 0;
    min_ = -1;
    count_ = 0;
    epoch_ = 0;
}

}  // namespace ceu::reactor
