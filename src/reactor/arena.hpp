// Per-shard slab arenas for the reactor's cross-thread hot path.
//
// The reactor's steady state used to hit the global allocator twice per
// injected event: `new Envelope` in the producer and `delete` in the
// draining shard. Under a worker pool that is cross-thread malloc/free
// traffic on every event — allocator-lock contention at exactly the rate
// the fleet is supposed to scale with — and it made per-instance memory
// numbers attribution noise (the bench derived them from boot RSS deltas,
// which swing with what the allocator happened to cache).
//
// ShardArena is a bump/slab allocator: memory is carved from fixed-size
// slabs that are only ever *added*, never freed individually, so every
// byte it has reserved is exactly accounted (`reserved_bytes`). It is not
// thread-safe by itself; EnvelopePool layers a spinlock-guarded free list
// on top for the one genuinely multi-producer object in the reactor.
//
// Why a spinlock and not a lock-free Treiber pop: producers on a lock-free
// free list would race pop() against each other, which reintroduces the
// classic ABA window (pop reads head->next while another producer pops and
// re-pushes head). The mailbox itself avoids ABA only because its consumer
// takes the whole list at once; the pool cannot. A test-and-set lock held
// for two pointer moves is cheaper than the CAS retry storm it replaces,
// and keeps the structure trivially TSan-clean.
//
// Engine-side note: the interpreter's containers (trail queue, timer
// wheel, value scratch) are std::vectors that reserve at construction and
// only count an allocation on genuine capacity growth — they are already
// slab-contiguous with zero steady-state traffic. The arena therefore
// covers the one remaining global-allocator path (envelopes); exact
// per-instance state bytes come from the backend's own model
// (host::Instance::state_bytes) instead of RSS.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace ceu::reactor {

/// Bump allocator over chained fixed-size slabs. Single-threaded (callers
/// provide their own exclusion); never frees individual objects — memory
/// is reclaimed all at once when the arena dies. `reserved_bytes` is the
/// exact global-allocator footprint: slab payloads only, counted at slab
/// acquisition.
class ShardArena {
  public:
    explicit ShardArena(size_t slab_bytes = 64 * 1024) : slab_bytes_(slab_bytes) {}

    ShardArena(const ShardArena&) = delete;
    ShardArena& operator=(const ShardArena&) = delete;

    /// Bumps off the current slab; starts a new slab when the request
    /// doesn't fit (oversized requests get a dedicated slab). Alignment is
    /// max_align_t — callers place ordinary objects, not SIMD state.
    void* allocate(size_t n) {
        n = (n + alignof(std::max_align_t) - 1) & ~(alignof(std::max_align_t) - 1);
        if (used_ + n > cap_) grow(n);
        void* p = cur_ + used_;
        used_ += n;
        return p;
    }

    /// Exact bytes this arena has taken from the global allocator.
    [[nodiscard]] uint64_t reserved_bytes() const {
        return reserved_.load(std::memory_order_relaxed);
    }

  private:
    void grow(size_t need) {
        size_t sz = need > slab_bytes_ ? need : slab_bytes_;
        slabs_.push_back(std::make_unique<char[]>(sz));
        cur_ = slabs_.back().get();
        cap_ = sz;
        used_ = 0;
        reserved_.fetch_add(sz, std::memory_order_relaxed);
    }

    size_t slab_bytes_;
    std::vector<std::unique_ptr<char[]>> slabs_;
    char* cur_ = nullptr;
    size_t used_ = 0;
    size_t cap_ = 0;
    // Relaxed atomic so fleet_stats() can read the gauge while producer
    // threads are still allocating envelopes.
    std::atomic<uint64_t> reserved_{0};
};

/// Fixed-size object pool over a ShardArena: any thread allocates, any
/// thread frees (producers inject from arbitrary threads; a stolen
/// phase-1 item frees its envelopes from the thief's thread). Freed cells
/// recycle through an intrusive free list, so a warmed-up pool never
/// touches the global allocator again — the "0 global-allocator bytes in
/// steady state" property the bench asserts.
template <typename T>
class ObjectPool {
    static_assert(std::is_trivially_destructible_v<T>,
                  "pooled cells are recycled without running destructors");

  public:
    ObjectPool() = default;
    ObjectPool(const ObjectPool&) = delete;
    ObjectPool& operator=(const ObjectPool&) = delete;

    /// Pops a recycled cell or bumps a fresh one; value-initializes it.
    T* alloc() {
        void* cell;
        lock();
        if (free_ != nullptr) {
            cell = free_;
            free_ = *static_cast<void**>(free_);
        } else {
            cell = arena_.allocate(cell_bytes());
        }
        unlock();
        return new (cell) T();
    }

    /// Returns a cell to the free list. Safe from any thread; the cell
    /// must have come from this pool.
    void free(T* p) {
        p->~T();
        lock();
        *reinterpret_cast<void**>(p) = free_;
        free_ = p;
        unlock();
    }

    [[nodiscard]] uint64_t reserved_bytes() const { return arena_.reserved_bytes(); }

  private:
    static constexpr size_t cell_bytes() {
        return sizeof(T) > sizeof(void*) ? sizeof(T) : sizeof(void*);
    }
    void lock() {
        while (lock_.test_and_set(std::memory_order_acquire)) {
#if defined(__cpp_lib_atomic_flag_test)
            while (lock_.test(std::memory_order_relaxed)) {}
#endif
        }
    }
    void unlock() { lock_.clear(std::memory_order_release); }

    std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
    void* free_ = nullptr;
    ShardArena arena_;
};

}  // namespace ceu::reactor
