#include "reactor/supervise.hpp"

#include <algorithm>

namespace ceu::reactor {

namespace {
uint64_t splitmix64_once(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}
}  // namespace

Micros backoff_delay_us(const SupervisorPolicy& p, uint64_t seed, InstanceId id,
                        uint64_t fault_ordinal, Micros tick_us) {
    uint64_t ticks = p.backoff_initial_ticks;
    // Exponential, saturating: shifting past the clamp (or past 63 bits)
    // pins the delay at backoff_max_ticks instead of wrapping.
    if (fault_ordinal > 1) {
        uint64_t doublings = fault_ordinal - 1;
        if (doublings >= 63 || (ticks << doublings) >> doublings != ticks) {
            ticks = p.backoff_max_ticks;
        } else {
            ticks <<= doublings;
        }
    }
    ticks = std::min(ticks, p.backoff_max_ticks);
    Micros delay = static_cast<Micros>(ticks) * tick_us;
    if (p.backoff_jitter_permille > 0 && delay > 0) {
        // Hash (seed, id, ordinal) — not thread timing — so the jitter is
        // identical for any worker count and reproducible per seed.
        uint64_t h = splitmix64_once(seed ^ (0x517cc1b727220a95ULL * (id + 1)) ^
                                     (0x2545f4914f6cdd1dULL * fault_ordinal));
        uint64_t permille = p.backoff_jitter_permille;
        // Map the hash to [-permille, +permille] around the base delay.
        int64_t offset = static_cast<int64_t>(h % (2 * permille + 1)) -
                         static_cast<int64_t>(permille);
        delay += delay * offset / 1000;
        if (delay < 1) delay = 1;
    }
    return delay;
}

size_t note_fault_tick(MemberState& m, const SupervisorPolicy& p, uint64_t tick) {
    ++m.faults;
    std::vector<uint64_t>& w = m.recent_fault_ticks;
    if (p.fault_window_ticks > 0) {
        uint64_t floor = tick >= p.fault_window_ticks ? tick - p.fault_window_ticks : 0;
        std::erase_if(w, [floor](uint64_t t) { return t < floor; });
    }
    w.push_back(tick);
    return w.size();
}

}  // namespace ceu::reactor
