// Tokenizer for Céu source (paper Appendix A).
//
// Identifier classes are distinguished lexically, exactly as in the paper:
//   ID_ext  begins with an uppercase letter  (external input events)
//   ID_int  begins with a lowercase letter   (variables, internal events)
//   ID_c    begins with an underscore        (symbols repassed to C)
// TIME literals such as `1h35min` or `500ms` are lexed as a single token
// whose value is in microseconds. `C do ... end` blocks are captured raw.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/diag.hpp"
#include "util/source.hpp"
#include "util/timeval.hpp"

namespace ceu {

enum class Tok {
    Eof,
    Num,      // integer literal (also character literals)
    Time,     // wall-clock literal, value in microseconds
    Str,      // string literal (quotes stripped, escapes resolved)
    IdExt,    // Uppercase identifier
    IdInt,    // lowercase identifier
    IdC,      // _underscore identifier (text stored without the underscore)
    CBlock,   // raw `C do ... end` body
    // keywords
    KwInput, KwInternal, KwOutput, KwDo, KwEnd, KwPar, KwParOr, KwParAnd,
    KwWith, KwLoop, KwBreak, KwAwait, KwEmit, KwIf, KwThen, KwElse,
    KwForever, KwAsync, KwReturn, KwCall, KwPure, KwDeterministic,
    KwNothing, KwSizeof, KwNull,
    // punctuation / operators
    LParen, RParen, LBrack, RBrack, Comma, Semi, Assign,
    OrOr, AndAnd, Or, Xor, And, Ne, EqEq, Le, Ge, Lt, Gt, Shl, Shr,
    Plus, Minus, Star, Slash, Percent, Dot, Arrow, Not, Tilde, Question, Colon,
};

const char* tok_name(Tok t);

struct Token {
    Tok kind = Tok::Eof;
    std::string text;     // identifier / string / raw C body
    int64_t num = 0;      // Num value or Time microseconds
    SourceLoc loc;
};

/// Tokenizes `src`, reporting malformed input to `diags`.
/// Always ends the stream with an Eof token.
std::vector<Token> lex(const SourceFile& src, Diagnostics& diags);

}  // namespace ceu
