#include "lexer/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace ceu {

const char* tok_name(Tok t) {
    switch (t) {
        case Tok::Eof: return "<eof>";
        case Tok::Num: return "number";
        case Tok::Time: return "time literal";
        case Tok::Str: return "string";
        case Tok::IdExt: return "external identifier";
        case Tok::IdInt: return "identifier";
        case Tok::IdC: return "C identifier";
        case Tok::CBlock: return "C block";
        case Tok::KwInput: return "'input'";
        case Tok::KwInternal: return "'internal'";
        case Tok::KwOutput: return "'output'";
        case Tok::KwDo: return "'do'";
        case Tok::KwEnd: return "'end'";
        case Tok::KwPar: return "'par'";
        case Tok::KwParOr: return "'par/or'";
        case Tok::KwParAnd: return "'par/and'";
        case Tok::KwWith: return "'with'";
        case Tok::KwLoop: return "'loop'";
        case Tok::KwBreak: return "'break'";
        case Tok::KwAwait: return "'await'";
        case Tok::KwEmit: return "'emit'";
        case Tok::KwIf: return "'if'";
        case Tok::KwThen: return "'then'";
        case Tok::KwElse: return "'else'";
        case Tok::KwForever: return "'forever'";
        case Tok::KwAsync: return "'async'";
        case Tok::KwReturn: return "'return'";
        case Tok::KwCall: return "'call'";
        case Tok::KwPure: return "'pure'";
        case Tok::KwDeterministic: return "'deterministic'";
        case Tok::KwNothing: return "'nothing'";
        case Tok::KwSizeof: return "'sizeof'";
        case Tok::KwNull: return "'null'";
        case Tok::LParen: return "'('";
        case Tok::RParen: return "')'";
        case Tok::LBrack: return "'['";
        case Tok::RBrack: return "']'";
        case Tok::Comma: return "','";
        case Tok::Semi: return "';'";
        case Tok::Assign: return "'='";
        case Tok::OrOr: return "'||'";
        case Tok::AndAnd: return "'&&'";
        case Tok::Or: return "'|'";
        case Tok::Xor: return "'^'";
        case Tok::And: return "'&'";
        case Tok::Ne: return "'!='";
        case Tok::EqEq: return "'=='";
        case Tok::Le: return "'<='";
        case Tok::Ge: return "'>='";
        case Tok::Lt: return "'<'";
        case Tok::Gt: return "'>'";
        case Tok::Shl: return "'<<'";
        case Tok::Shr: return "'>>'";
        case Tok::Plus: return "'+'";
        case Tok::Minus: return "'-'";
        case Tok::Star: return "'*'";
        case Tok::Slash: return "'/'";
        case Tok::Percent: return "'%'";
        case Tok::Dot: return "'.'";
        case Tok::Arrow: return "'->'";
        case Tok::Not: return "'!'";
        case Tok::Tilde: return "'~'";
        case Tok::Question: return "'?'";
        case Tok::Colon: return "':'";
    }
    return "?";
}

namespace {

const std::unordered_map<std::string, Tok>& keyword_table() {
    static const std::unordered_map<std::string, Tok> kTable = {
        {"input", Tok::KwInput},
        {"internal", Tok::KwInternal},
        {"output", Tok::KwOutput},
        {"do", Tok::KwDo},
        {"end", Tok::KwEnd},
        {"par", Tok::KwPar},
        {"with", Tok::KwWith},
        {"loop", Tok::KwLoop},
        {"break", Tok::KwBreak},
        {"await", Tok::KwAwait},
        {"emit", Tok::KwEmit},
        {"if", Tok::KwIf},
        {"then", Tok::KwThen},
        {"else", Tok::KwElse},
        {"forever", Tok::KwForever},
        {"async", Tok::KwAsync},
        {"return", Tok::KwReturn},
        {"call", Tok::KwCall},
        {"pure", Tok::KwPure},
        {"deterministic", Tok::KwDeterministic},
        {"nothing", Tok::KwNothing},
        {"sizeof", Tok::KwSizeof},
        {"null", Tok::KwNull},
    };
    return kTable;
}

class Lexer {
  public:
    Lexer(const SourceFile& src, Diagnostics& diags)
        : text_(src.text()), diags_(diags) {}

    std::vector<Token> run() {
        std::vector<Token> out;
        for (;;) {
            skip_trivia();
            Token t = next();
            bool eof = (t.kind == Tok::Eof);
            out.push_back(std::move(t));
            if (eof) break;
        }
        return out;
    }

  private:
    std::string_view text_;
    Diagnostics& diags_;
    size_t pos_ = 0;
    uint32_t line_ = 1;
    uint32_t col_ = 1;

    [[nodiscard]] SourceLoc loc() const { return {line_, col_}; }
    [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
    [[nodiscard]] char peek(size_t off = 0) const {
        return pos_ + off < text_.size() ? text_[pos_ + off] : '\0';
    }
    char advance() {
        char c = text_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }
    bool match(char c) {
        if (peek() == c) {
            advance();
            return true;
        }
        return false;
    }

    void skip_trivia() {
        for (;;) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
                advance();
            } else if (c == '/' && peek(1) == '/') {
                while (!eof() && peek() != '\n') advance();
            } else if (c == '/' && peek(1) == '*') {
                SourceLoc start = loc();
                advance();
                advance();
                while (!eof() && !(peek() == '*' && peek(1) == '/')) advance();
                if (eof()) {
                    diags_.error(start, "unterminated block comment");
                    return;
                }
                advance();
                advance();
            } else {
                return;
            }
        }
    }

    Token make(Tok k, SourceLoc at) {
        Token t;
        t.kind = k;
        t.loc = at;
        return t;
    }

    Token next() {
        SourceLoc at = loc();
        if (eof()) return make(Tok::Eof, at);
        char c = peek();
        if (std::isdigit(static_cast<unsigned char>(c))) return lex_number(at);
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return lex_ident(at);
        if (c == '"') return lex_string(at);
        if (c == '\'') return lex_char(at);
        return lex_operator(at);
    }

    Token lex_number(SourceLoc at) {
        // A digit run optionally followed by time units makes a TIME literal
        // (e.g. `1h35min`); digits alone make a NUM.
        size_t start = pos_;
        while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                          std::isalpha(static_cast<unsigned char>(peek())))) {
            advance();
        }
        std::string word(text_.substr(start, pos_ - start));
        Token t = make(Tok::Num, at);
        bool digits_only = true;
        for (char ch : word) {
            if (!std::isdigit(static_cast<unsigned char>(ch))) digits_only = false;
        }
        if (digits_only) {
            t.num = std::stoll(word);
            return t;
        }
        Micros us = 0;
        if (parse_time_literal(word, &us)) {
            t.kind = Tok::Time;
            t.num = us;
            return t;
        }
        // Hex literal support (common in pasted C constants).
        if (word.size() > 2 && word[0] == '0' && (word[1] == 'x' || word[1] == 'X')) {
            try {
                t.num = std::stoll(word.substr(2), nullptr, 16);
                return t;
            } catch (const std::exception&) {
                // fall through to error
            }
        }
        diags_.error(at, "malformed numeric or time literal '" + word + "'");
        t.num = 0;
        return t;
    }

    Token lex_ident(SourceLoc at) {
        size_t start = pos_;
        while (!eof() && (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
            advance();
        }
        std::string word(text_.substr(start, pos_ - start));
        auto it = keyword_table().find(word);
        if (it != keyword_table().end()) {
            Tok k = it->second;
            if (k == Tok::KwPar) {
                // `par/or` and `par/and` are single keywords.
                if (peek() == '/') {
                    size_t save_pos = pos_;
                    uint32_t save_line = line_, save_col = col_;
                    advance();
                    size_t wstart = pos_;
                    while (!eof() && std::isalpha(static_cast<unsigned char>(peek()))) advance();
                    std::string tail(text_.substr(wstart, pos_ - wstart));
                    if (tail == "or") return make(Tok::KwParOr, at);
                    if (tail == "and") return make(Tok::KwParAnd, at);
                    pos_ = save_pos;
                    line_ = save_line;
                    col_ = save_col;
                }
            }
            return make(k, at);
        }
        if (word == "C") {
            // `C do ... end` captures a raw C block.
            size_t save_pos = pos_;
            uint32_t save_line = line_, save_col = col_;
            skip_trivia();
            if (!eof() && text_.substr(pos_).starts_with("do") &&
                !(std::isalnum(static_cast<unsigned char>(peek(2))) || peek(2) == '_')) {
                advance();
                advance();  // consume 'do'
                return lex_raw_c_block(at);
            }
            pos_ = save_pos;
            line_ = save_line;
            col_ = save_col;
        }
        Token t;
        if (word[0] == '_') {
            t = make(Tok::IdC, at);
            t.text = word.substr(1);  // the underscore is stripped (paper §2.4)
            if (t.text.empty()) diags_.error(at, "'_' is not a valid C identifier");
        } else if (std::isupper(static_cast<unsigned char>(word[0]))) {
            t = make(Tok::IdExt, at);
            t.text = word;
        } else {
            t = make(Tok::IdInt, at);
            t.text = word;
        }
        return t;
    }

    Token lex_raw_c_block(SourceLoc at) {
        // Capture everything until the first standalone `end` word. The
        // open-source Céu compiler does not parse the embedded C either.
        Token t = make(Tok::CBlock, at);
        size_t start = pos_;
        while (!eof()) {
            if (peek() == 'e' && text_.substr(pos_).starts_with("end")) {
                char before = pos_ > 0 ? text_[pos_ - 1] : '\n';
                char after = peek(3);
                bool left_ok = !(std::isalnum(static_cast<unsigned char>(before)) || before == '_');
                bool right_ok = !(std::isalnum(static_cast<unsigned char>(after)) || after == '_');
                if (left_ok && right_ok) {
                    t.text = std::string(text_.substr(start, pos_ - start));
                    advance();
                    advance();
                    advance();  // consume 'end'
                    return t;
                }
            }
            advance();
        }
        diags_.error(at, "unterminated C block (missing 'end')");
        t.text = std::string(text_.substr(start));
        return t;
    }

    Token lex_string(SourceLoc at) {
        advance();  // opening quote
        std::string value;
        while (!eof() && peek() != '"') {
            char c = advance();
            if (c == '\\' && !eof()) {
                char e = advance();
                switch (e) {
                    case 'n': value += '\n'; break;
                    case 't': value += '\t'; break;
                    case 'r': value += '\r'; break;
                    case '0': value += '\0'; break;
                    case '\\': value += '\\'; break;
                    case '"': value += '"'; break;
                    default: value += e; break;
                }
            } else {
                value += c;
            }
        }
        if (eof()) {
            diags_.error(at, "unterminated string literal");
        } else {
            advance();  // closing quote
        }
        Token t = make(Tok::Str, at);
        t.text = std::move(value);
        return t;
    }

    Token lex_char(SourceLoc at) {
        advance();  // opening quote
        int64_t value = 0;
        if (!eof()) {
            char c = advance();
            if (c == '\\' && !eof()) {
                char e = advance();
                switch (e) {
                    case 'n': value = '\n'; break;
                    case 't': value = '\t'; break;
                    case '0': value = '\0'; break;
                    default: value = e; break;
                }
            } else {
                value = c;
            }
        }
        if (!match('\'')) diags_.error(at, "unterminated character literal");
        Token t = make(Tok::Num, at);
        t.num = value;
        return t;
    }

    Token lex_operator(SourceLoc at) {
        char c = advance();
        switch (c) {
            case '(': return make(Tok::LParen, at);
            case ')': return make(Tok::RParen, at);
            case '[': return make(Tok::LBrack, at);
            case ']': return make(Tok::RBrack, at);
            case ',': return make(Tok::Comma, at);
            case ';': return make(Tok::Semi, at);
            case '?': return make(Tok::Question, at);
            case ':': return make(Tok::Colon, at);
            case '~': return make(Tok::Tilde, at);
            case '^': return make(Tok::Xor, at);
            case '%': return make(Tok::Percent, at);
            case '.': return make(Tok::Dot, at);
            case '+': return make(Tok::Plus, at);
            case '*': return make(Tok::Star, at);
            case '/': return make(Tok::Slash, at);
            case '=': return make(match('=') ? Tok::EqEq : Tok::Assign, at);
            case '!': return make(match('=') ? Tok::Ne : Tok::Not, at);
            case '|': return make(match('|') ? Tok::OrOr : Tok::Or, at);
            case '&': return make(match('&') ? Tok::AndAnd : Tok::And, at);
            case '-': return make(match('>') ? Tok::Arrow : Tok::Minus, at);
            case '<':
                if (match('=')) return make(Tok::Le, at);
                if (match('<')) return make(Tok::Shl, at);
                return make(Tok::Lt, at);
            case '>':
                if (match('=')) return make(Tok::Ge, at);
                if (match('>')) return make(Tok::Shr, at);
                return make(Tok::Gt, at);
            default:
                diags_.error(at, std::string("unexpected character '") + c + "'");
                return make(Tok::Eof, at);
        }
    }
};

}  // namespace

std::vector<Token> lex(const SourceFile& src, Diagnostics& diags) {
    return Lexer(src, diags).run();
}

}  // namespace ceu
