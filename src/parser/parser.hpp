// Recursive-descent parser for the Céu grammar (paper Appendix A).
//
// Deviations from the paper grammar, all of which *accept more* programs:
//  * semicolons between statements are optional (the paper's own examples
//    omit them after `end`);
//  * `await (Exp)` accepts a full expression, not just NUM — the ship demo
//    uses `await(dt*1000)`;
//  * `internal <type> e` declares internal events (the paper's examples use
//    this form although the printed grammar omits it).
#pragma once

#include "ast/ast.hpp"
#include "lexer/lexer.hpp"
#include "util/diag.hpp"

namespace ceu {

/// Parses a token stream into a Program. On error, diagnostics are recorded
/// and a best-effort partial tree is returned; callers must check
/// `diags.ok()` before using the result.
ast::Program parse(std::vector<Token> tokens, Diagnostics& diags);

/// Convenience: lex + parse a source string.
ast::Program parse_source(const std::string& text, Diagnostics& diags,
                          const std::string& name = "<memory>");

}  // namespace ceu
