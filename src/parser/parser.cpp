#include "parser/parser.hpp"

#include <utility>

namespace ceu {

using namespace ast;

namespace {

class Parser {
  public:
    Parser(std::vector<Token> tokens, Diagnostics& diags)
        : toks_(std::move(tokens)), diags_(diags) {}

    Program run() {
        Program p;
        p.body = parse_block_until({Tok::Eof});
        expect(Tok::Eof, "end of program");
        return p;
    }

  private:
    std::vector<Token> toks_;
    Diagnostics& diags_;
    size_t pos_ = 0;

    // -- token helpers ------------------------------------------------------

    [[nodiscard]] const Token& peek(size_t off = 0) const {
        size_t i = pos_ + off;
        if (i >= toks_.size()) i = toks_.size() - 1;  // Eof sentinel
        return toks_[i];
    }
    [[nodiscard]] Tok kind(size_t off = 0) const { return peek(off).kind; }
    [[nodiscard]] SourceLoc loc() const { return peek().loc; }

    const Token& advance() {
        const Token& t = peek();
        if (pos_ + 1 < toks_.size()) ++pos_;
        return t;
    }
    bool check(Tok k) const { return kind() == k; }
    bool match(Tok k) {
        if (check(k)) {
            advance();
            return true;
        }
        return false;
    }
    const Token& expect(Tok k, const char* what) {
        if (!check(k)) {
            diags_.error(loc(), std::string("expected ") + what + ", found " +
                                    tok_name(kind()));
            return peek();
        }
        return advance();
    }

    // -- blocks -------------------------------------------------------------

    [[nodiscard]] static bool is_terminator(Tok k, const std::vector<Tok>& stops) {
        for (Tok s : stops) {
            if (k == s) return true;
        }
        return false;
    }

    BlockBody parse_block_until(const std::vector<Tok>& stops) {
        BlockBody body;
        while (match(Tok::Semi)) {}
        while (!is_terminator(kind(), stops) && kind() != Tok::Eof) {
            size_t before = pos_;
            body.stmts.push_back(parse_stmt());
            while (match(Tok::Semi)) {}
            if (pos_ == before) {
                // Error recovery: never loop without progress.
                advance();
            }
        }
        return body;
    }

    // -- statements ---------------------------------------------------------

    StmtPtr parse_stmt() {
        switch (kind()) {
            case Tok::KwNothing: {
                SourceLoc l = advance().loc;
                return std::make_unique<NothingStmt>(l);
            }
            case Tok::KwInput: return parse_decl_input();
            case Tok::KwInternal: return parse_decl_internal();
            case Tok::KwOutput: return parse_decl_output();
            case Tok::CBlock: {
                const Token& t = advance();
                return std::make_unique<CBlockStmt>(t.text, t.loc);
            }
            case Tok::KwPure: return parse_annotation(/*pure=*/true);
            case Tok::KwDeterministic: return parse_annotation(/*pure=*/false);
            case Tok::KwAwait: return parse_await();
            case Tok::KwEmit: return parse_emit();
            case Tok::KwIf: return parse_if();
            case Tok::KwLoop: return parse_loop();
            case Tok::KwBreak: {
                SourceLoc l = advance().loc;
                return std::make_unique<BreakStmt>(l);
            }
            case Tok::KwPar:
            case Tok::KwParOr:
            case Tok::KwParAnd: return parse_par();
            case Tok::KwReturn: return parse_return();
            case Tok::KwDo: return parse_do_block();
            case Tok::KwAsync: return parse_async();
            case Tok::KwCall: {
                SourceLoc l = advance().loc;
                ExprPtr e = parse_expr();
                return std::make_unique<ExprStmtStmt>(std::move(e), l);
            }
            default:
                if (starts_var_decl()) return parse_decl_var();
                return parse_expr_or_assign();
        }
    }

    StmtPtr parse_decl_input() {
        SourceLoc l = advance().loc;
        auto n = std::make_unique<DeclInputStmt>(l);
        n->type = parse_type();
        do {
            const Token& t = expect(Tok::IdExt, "external event name (Uppercase)");
            if (t.kind == Tok::IdExt) n->names.push_back(t.text);
            else break;
        } while (match(Tok::Comma));
        return n;
    }

    StmtPtr parse_decl_output() {
        SourceLoc l = advance().loc;
        auto n = std::make_unique<DeclOutputStmt>(l);
        n->type = parse_type();
        do {
            const Token& t = expect(Tok::IdExt, "output event name (Uppercase)");
            if (t.kind == Tok::IdExt) n->names.push_back(t.text);
            else break;
        } while (match(Tok::Comma));
        return n;
    }

    StmtPtr parse_decl_internal() {
        SourceLoc l = advance().loc;
        auto n = std::make_unique<DeclInternalStmt>(l);
        n->type = parse_type();
        do {
            const Token& t = expect(Tok::IdInt, "internal event name (lowercase)");
            if (t.kind == Tok::IdInt) n->names.push_back(t.text);
            else break;
        } while (match(Tok::Comma));
        return n;
    }

    StmtPtr parse_annotation(bool pure) {
        SourceLoc l = advance().loc;
        std::vector<std::string> names;
        do {
            const Token& t = expect(Tok::IdC, "C function name (_underscored)");
            if (t.kind != Tok::IdC) break;
            std::string name = t.text;
            // Dotted method names (`_lcd.setCursor`) are annotatable too.
            while (match(Tok::Dot)) {
                const Token& f = advance();
                name += "." + f.text;
            }
            names.push_back(std::move(name));
        } while (match(Tok::Comma));
        if (pure) {
            auto n = std::make_unique<PureStmt>(l);
            n->names = std::move(names);
            return n;
        }
        auto n = std::make_unique<DeterministicStmt>(l);
        n->names = std::move(names);
        return n;
    }

    StmtPtr parse_await() {
        SourceLoc l = advance().loc;
        switch (kind()) {
            case Tok::KwForever:
                advance();
                return std::make_unique<AwaitForeverStmt>(l);
            case Tok::Time: {
                const Token& t = advance();
                return std::make_unique<AwaitTimeStmt>(t.num, l);
            }
            case Tok::LParen: {
                advance();
                ExprPtr e = parse_expr();
                expect(Tok::RParen, "')' closing await duration");
                return std::make_unique<AwaitDynStmt>(std::move(e), l);
            }
            case Tok::IdExt: {
                const Token& t = advance();
                return std::make_unique<AwaitExtStmt>(t.text, l);
            }
            case Tok::IdInt: {
                const Token& t = advance();
                return std::make_unique<AwaitIntStmt>(t.text, l);
            }
            default:
                diags_.error(l, "malformed await: expected event, time, or 'forever'");
                return std::make_unique<NothingStmt>(l);
        }
    }

    StmtPtr parse_emit() {
        SourceLoc l = advance().loc;
        switch (kind()) {
            case Tok::Time: {
                const Token& t = advance();
                return std::make_unique<EmitTimeStmt>(t.num, l);
            }
            case Tok::IdExt: {
                const Token& t = advance();
                auto n = std::make_unique<EmitExtStmt>(t.text, l);
                if (match(Tok::Assign)) n->value = parse_expr();
                return n;
            }
            case Tok::IdInt: {
                const Token& t = advance();
                auto n = std::make_unique<EmitIntStmt>(t.text, l);
                if (match(Tok::Assign)) n->value = parse_expr();
                return n;
            }
            default:
                diags_.error(l, "malformed emit: expected event or time");
                return std::make_unique<NothingStmt>(l);
        }
    }

    StmtPtr parse_if() {
        SourceLoc l = advance().loc;
        auto n = std::make_unique<IfStmt>(l);
        n->cond = parse_expr();
        expect(Tok::KwThen, "'then'");
        n->then_body = parse_block_until({Tok::KwElse, Tok::KwEnd});
        if (match(Tok::KwElse)) {
            n->has_else = true;
            n->else_body = parse_block_until({Tok::KwEnd});
        }
        expect(Tok::KwEnd, "'end' closing if");
        return n;
    }

    StmtPtr parse_loop() {
        SourceLoc l = advance().loc;
        expect(Tok::KwDo, "'do' after loop");
        auto n = std::make_unique<LoopStmt>(l);
        n->body = parse_block_until({Tok::KwEnd});
        expect(Tok::KwEnd, "'end' closing loop");
        return n;
    }

    StmtPtr parse_par() {
        SourceLoc l = loc();
        ParKind pk = kind() == Tok::KwPar ? ParKind::Par
                     : kind() == Tok::KwParAnd ? ParKind::ParAnd
                                               : ParKind::ParOr;
        advance();
        expect(Tok::KwDo, "'do' after par");
        auto n = std::make_unique<ParStmt>(pk, l);
        n->branches.push_back(parse_block_until({Tok::KwWith, Tok::KwEnd}));
        while (match(Tok::KwWith)) {
            n->branches.push_back(parse_block_until({Tok::KwWith, Tok::KwEnd}));
        }
        expect(Tok::KwEnd, "'end' closing par");
        if (n->branches.size() < 2) {
            diags_.error(l, "parallel statement requires at least two branches");
        }
        return n;
    }

    StmtPtr parse_return() {
        SourceLoc l = advance().loc;
        auto n = std::make_unique<ReturnStmt>(l);
        if (!check(Tok::Semi) && !check(Tok::KwEnd) && !check(Tok::KwWith) &&
            !check(Tok::KwElse) && !check(Tok::Eof)) {
            n->value = parse_expr();
        }
        return n;
    }

    StmtPtr parse_do_block() {
        SourceLoc l = advance().loc;
        auto n = std::make_unique<BlockStmt>(l);
        n->body = parse_block_until({Tok::KwEnd});
        expect(Tok::KwEnd, "'end' closing block");
        return n;
    }

    StmtPtr parse_async() {
        SourceLoc l = advance().loc;
        expect(Tok::KwDo, "'do' after async");
        auto n = std::make_unique<AsyncStmt>(l);
        n->body = parse_block_until({Tok::KwEnd});
        expect(Tok::KwEnd, "'end' closing async");
        return n;
    }

    // -- declarations vs expressions -----------------------------------------

    /// A statement is a variable declaration iff it starts with
    /// (ID_int | ID_c) '*'* ('[' NUM ']')? ID_int  — e.g. `int v`,
    /// `_message_t* msg`, `int[10] keys`.
    bool starts_var_decl() const {
        if (kind() != Tok::IdInt && kind() != Tok::IdC) return false;
        size_t i = 1;
        while (kind(i) == Tok::Star) ++i;
        if (kind(i) == Tok::LBrack) {
            if (kind(i + 1) != Tok::Num || kind(i + 2) != Tok::RBrack) return false;
            i += 3;
        }
        return kind(i) == Tok::IdInt;
    }

    Type parse_type() {
        Type t;
        if (kind() == Tok::IdInt) {
            t.name = advance().text;
        } else if (kind() == Tok::IdC) {
            t.name = advance().text;
            t.is_c = true;
        } else {
            diags_.error(loc(), "expected a type name");
            advance();
        }
        while (match(Tok::Star)) ++t.pointer_depth;
        return t;
    }

    StmtPtr parse_decl_var() {
        SourceLoc l = loc();
        auto n = std::make_unique<DeclVarStmt>(l);
        // Type, possibly with `[N]` array suffix applying to all declarators.
        n->type.name = advance().text;
        n->type.is_c = (toks_[pos_ - 1].kind == Tok::IdC);
        while (match(Tok::Star)) ++n->type.pointer_depth;
        int64_t array_size = 0;
        if (match(Tok::LBrack)) {
            array_size = expect(Tok::Num, "array size").num;
            expect(Tok::RBrack, "']'");
        }
        do {
            DeclVarStmt::Var v;
            v.loc = loc();
            v.array_size = array_size;
            const Token& name = expect(Tok::IdInt, "variable name");
            if (name.kind != Tok::IdInt) break;
            v.name = name.text;
            if (match(Tok::Assign)) parse_setexp(v.init, v.init_stmt);
            n->vars.push_back(std::move(v));
        } while (match(Tok::Comma));
        return n;
    }

    /// SetExp ::= Exp | await-stmt | par/do/async block returning a value.
    void parse_setexp(ExprPtr& out_expr, StmtPtr& out_stmt) {
        switch (kind()) {
            case Tok::KwAwait: out_stmt = parse_await(); return;
            case Tok::KwPar:
            case Tok::KwParOr:
            case Tok::KwParAnd: out_stmt = parse_par(); return;
            case Tok::KwDo: out_stmt = parse_do_block(); return;
            case Tok::KwAsync: out_stmt = parse_async(); return;
            default: out_expr = parse_expr(); return;
        }
    }

    StmtPtr parse_expr_or_assign() {
        SourceLoc l = loc();
        ExprPtr e = parse_expr();
        if (match(Tok::Assign)) {
            auto n = std::make_unique<AssignStmt>(l);
            n->lhs = std::move(e);
            parse_setexp(n->rhs_expr, n->rhs_stmt);
            return n;
        }
        return std::make_unique<ExprStmtStmt>(std::move(e), l);
    }

    // -- expressions (C precedence) ------------------------------------------

    ExprPtr parse_expr() { return parse_binary(0); }

    struct OpLevel {
        Tok ops[4];
        int count;
    };

    static int binop_level(Tok k) {
        switch (k) {
            case Tok::OrOr: return 1;
            case Tok::AndAnd: return 2;
            case Tok::Or: return 3;
            case Tok::Xor: return 4;
            case Tok::And: return 5;
            case Tok::EqEq:
            case Tok::Ne: return 6;
            case Tok::Lt:
            case Tok::Gt:
            case Tok::Le:
            case Tok::Ge: return 7;
            case Tok::Shl:
            case Tok::Shr: return 8;
            case Tok::Plus:
            case Tok::Minus: return 9;
            case Tok::Star:
            case Tok::Slash:
            case Tok::Percent: return 10;
            default: return 0;
        }
    }

    ExprPtr parse_binary(int min_level) {
        ExprPtr lhs = parse_unary();
        for (;;) {
            Tok k = kind();
            int level = binop_level(k);
            if (level == 0 || level < min_level) return lhs;
            // `<` might open a cast in unary position only, never here.
            SourceLoc l = loc();
            advance();
            ExprPtr rhs = parse_binary(level + 1);
            lhs = std::make_unique<BinopExpr>(k, std::move(lhs), std::move(rhs), l);
        }
    }

    /// `< type >` at unary position introduces a cast.
    bool starts_cast() const {
        if (kind() != Tok::Lt) return false;
        size_t i = 1;
        if (kind(i) != Tok::IdInt && kind(i) != Tok::IdC) return false;
        ++i;
        while (kind(i) == Tok::Star) ++i;
        return kind(i) == Tok::Gt;
    }

    ExprPtr parse_unary() {
        SourceLoc l = loc();
        switch (kind()) {
            case Tok::Not:
            case Tok::And:
            case Tok::Minus:
            case Tok::Plus:
            case Tok::Tilde:
            case Tok::Star: {
                Tok op = advance().kind;
                ExprPtr sub = parse_unary();
                return std::make_unique<UnopExpr>(op, std::move(sub), l);
            }
            case Tok::KwSizeof: {
                advance();
                expect(Tok::Lt, "'<' after sizeof");
                Type t = parse_type();
                expect(Tok::Gt, "'>' after sizeof type");
                return std::make_unique<SizeOfExpr>(std::move(t), l);
            }
            case Tok::Lt:
                if (starts_cast()) {
                    advance();
                    Type t = parse_type();
                    expect(Tok::Gt, "'>' closing cast");
                    ExprPtr sub = parse_unary();
                    return std::make_unique<CastExpr>(std::move(t), std::move(sub), l);
                }
                break;
            default:
                break;
        }
        return parse_postfix();
    }

    ExprPtr parse_postfix() {
        ExprPtr e = parse_primary();
        for (;;) {
            SourceLoc l = loc();
            if (match(Tok::LBrack)) {
                ExprPtr idx = parse_expr();
                expect(Tok::RBrack, "']'");
                e = std::make_unique<IndexExpr>(std::move(e), std::move(idx), l);
            } else if (match(Tok::LParen)) {
                std::vector<ExprPtr> args;
                if (!check(Tok::RParen)) {
                    do {
                        args.push_back(parse_expr());
                    } while (match(Tok::Comma));
                }
                expect(Tok::RParen, "')' closing call");
                e = std::make_unique<CallExpr>(std::move(e), std::move(args), l);
            } else if (match(Tok::Dot)) {
                const Token& f = advance();
                if (f.kind != Tok::IdInt && f.kind != Tok::IdExt && f.kind != Tok::IdC) {
                    diags_.error(f.loc, "expected field name after '.'");
                    return e;
                }
                e = std::make_unique<FieldExpr>(std::move(e), f.text, /*arrow=*/false, l);
            } else if (match(Tok::Arrow)) {
                const Token& f = advance();
                if (f.kind != Tok::IdInt && f.kind != Tok::IdExt && f.kind != Tok::IdC) {
                    diags_.error(f.loc, "expected field name after '->'");
                    return e;
                }
                e = std::make_unique<FieldExpr>(std::move(e), f.text, /*arrow=*/true, l);
            } else {
                return e;
            }
        }
    }

    ExprPtr parse_primary() {
        SourceLoc l = loc();
        switch (kind()) {
            case Tok::Num: {
                const Token& t = advance();
                return std::make_unique<NumExpr>(t.num, l);
            }
            case Tok::Str: {
                const Token& t = advance();
                return std::make_unique<StrExpr>(t.text, l);
            }
            case Tok::KwNull:
                advance();
                return std::make_unique<NullExpr>(l);
            case Tok::IdInt: {
                const Token& t = advance();
                return std::make_unique<VarExpr>(t.text, l);
            }
            case Tok::IdExt: {
                // External event names appear in expressions only via bugs;
                // accept as a variable reference so sema can diagnose.
                const Token& t = advance();
                return std::make_unique<VarExpr>(t.text, l);
            }
            case Tok::IdC: {
                const Token& t = advance();
                return std::make_unique<CSymExpr>(t.text, l);
            }
            case Tok::LParen: {
                advance();
                ExprPtr e = parse_expr();
                expect(Tok::RParen, "')'");
                return e;
            }
            default:
                diags_.error(l, std::string("expected an expression, found ") +
                                    tok_name(kind()));
                advance();
                return std::make_unique<NumExpr>(0, l);
        }
    }
};

}  // namespace

ast::Program parse(std::vector<Token> tokens, Diagnostics& diags) {
    return Parser(std::move(tokens), diags).run();
}

ast::Program parse_source(const std::string& text, Diagnostics& diags,
                          const std::string& name) {
    SourceFile src(name, text);
    auto tokens = lex(src, diags);
    if (!diags.ok()) return {};
    return parse(std::move(tokens), diags);
}

}  // namespace ceu
