#include "aot/aot.hpp"

#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "cgen/cgen.hpp"
#include "runtime/engine.hpp"

namespace ceu::aot {

namespace {

void set_err(std::string* err, std::string msg) {
    if (err != nullptr) *err = std::move(msg);
}

/// Process-unique scratch directory name (not yet created). Same root
/// resolution as the differential harness: workdir, else $TMPDIR, else /tmp.
std::string unique_dir(const BuildOptions& opt) {
    static std::atomic<int> counter{0};
    std::string dir = opt.work_dir;
    if (dir.empty()) {
        const char* t = std::getenv("TMPDIR");
        dir = (t != nullptr && *t != '\0') ? t : "/tmp";
    }
    if (dir.back() != '/') dir += '/';
    return dir + "ceu_aot_" + std::to_string(getpid()) + "_" +
           std::to_string(counter.fetch_add(1));
}

std::string read_text(const std::string& path) {
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

/// First line or two of a compiler/loader stderr dump — enough to diagnose,
/// small enough to embed in a JSON diagnostic.
std::string err_head(const std::string& text) {
    size_t cut = text.find('\n');
    if (cut != std::string::npos) {
        size_t second = text.find('\n', cut + 1);
        cut = second == std::string::npos ? text.size() : second;
    } else {
        cut = text.size();
    }
    std::string head = text.substr(0, cut);
    for (char& c : head) {
        if (c == '\n') c = ' ';
    }
    return head;
}

}  // namespace

bool toolchain_available(const BuildOptions& opt) {
    // Probe the first token of the compiler command; `command -v` covers
    // both $PATH lookups and absolute paths.
    std::string tok = opt.cc.substr(0, opt.cc.find(' '));
    if (tok.empty()) return false;
    std::string probe = "command -v '" + tok + "' >/dev/null 2>&1";
    return std::system(probe.c_str()) == 0;
}

std::shared_ptr<const FleetImage> FleetImage::load(
    const std::string& so_path,
    std::span<const std::shared_ptr<const flat::CompiledProgram>> programs,
    std::string* err) {
    void* dl = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (dl == nullptr) {
        const char* why = ::dlerror();
        set_err(err, "aot: dlopen failed: " + std::string(why != nullptr ? why : "?"));
        return nullptr;
    }
    auto image = std::shared_ptr<FleetImage>(new FleetImage());
    image->dl_ = dl;
    image->so_path_ = so_path;
    image->descs_.reserve(programs.size());
    for (size_t i = 0; i < programs.size(); ++i) {
        std::string sym = std::string(cgen::kAotSymbolPrefix) + std::to_string(i);
        auto* desc =
            static_cast<const ceu_aot_program_t*>(::dlsym(dl, sym.c_str()));
        if (desc == nullptr) {
            set_err(err, "aot: missing descriptor symbol '" + sym + "' in " + so_path);
            return nullptr;  // image dtor dlcloses
        }
        if (desc->abi_version != cgen::kAotAbiVersion) {
            set_err(err, "aot: ABI version mismatch in '" + sym + "': image has " +
                             std::to_string(desc->abi_version) + ", host expects " +
                             std::to_string(cgen::kAotAbiVersion));
            return nullptr;
        }
        uint64_t want = rt::program_fingerprint(*programs[i]);
        if (desc->fingerprint != want) {
            set_err(err, "aot: fingerprint mismatch in '" + sym +
                             "': image was compiled from a different program");
            return nullptr;
        }
        image->descs_.push_back(desc);
    }
    return image;
}

std::shared_ptr<const FleetImage> FleetImage::build(
    std::span<const std::shared_ptr<const flat::CompiledProgram>> programs,
    const BuildOptions& opt, std::string* err) {
    if (programs.empty()) {
        set_err(err, "aot: empty fleet");
        return nullptr;
    }
    for (const auto& cp : programs) {
        if (cp == nullptr) {
            set_err(err, "aot: null program in fleet");
            return nullptr;
        }
    }
    std::string dir = unique_dir(opt);
    if (::mkdir(dir.c_str(), 0700) != 0) {
        set_err(err, "aot: cannot create work directory " + dir);
        return nullptr;
    }
    std::vector<std::string> artifacts;
    auto cleanup = [&artifacts, &dir, &opt](bool force) {
        if (opt.keep_artifacts && !force) return;
        for (const std::string& p : artifacts) ::unlink(p.c_str());
        ::rmdir(dir.c_str());
    };

    std::string cmd = opt.cc + " " + opt.cflags;
    std::string so_path = dir + "/fleet.so";
    std::string err_path = dir + "/cc.err";
    cmd += " -o " + so_path;
    for (size_t i = 0; i < programs.size(); ++i) {
        cgen::CgenOptions copt;
        copt.with_main = false;
        copt.with_libc = true;
        copt.reentrant = true;
        copt.aot_symbol = std::string(cgen::kAotSymbolPrefix) + std::to_string(i);
        copt.program_name = "prog" + std::to_string(i);
        std::string c_path = dir + "/tu" + std::to_string(i) + ".c";
        {
            std::ofstream f(c_path);
            f << cgen::emit_c(*programs[i], copt);
            if (!f) {
                set_err(err, "aot: cannot write " + c_path);
                cleanup(true);
                return nullptr;
            }
        }
        artifacts.push_back(c_path);
        cmd += " " + c_path;
    }
    cmd += " 2>" + err_path;
    artifacts.push_back(err_path);
    artifacts.push_back(so_path);

    if (std::system(cmd.c_str()) != 0) {
        std::string detail = err_head(read_text(err_path));
        set_err(err, "aot: cc failed (" + opt.cc + "): " +
                         (detail.empty() ? "compiler not found or produced no diagnostics"
                                         : detail));
        cleanup(false);
        return nullptr;
    }

    std::shared_ptr<const FleetImage> image = load(so_path, programs, err);
    // The mapping survives unlinking the .so (and everything else), so the
    // scratch directory can go away right now unless artifacts were asked
    // for. A failed load keeps them only under keep_artifacts too.
    cleanup(false);
    return image;
}

ProgramHandle FleetImage::build_one(std::shared_ptr<const flat::CompiledProgram> cp,
                                    const BuildOptions& opt, std::string* err) {
    std::shared_ptr<const flat::CompiledProgram> programs[] = {std::move(cp)};
    auto image = build(programs, opt, err);
    if (image == nullptr) return {};
    return image->program(0);
}

FleetImage::~FleetImage() {
    if (dl_ != nullptr) ::dlclose(dl_);
}

}  // namespace ceu::aot
