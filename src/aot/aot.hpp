// AOT fleet images: ahead-of-time compiled Céu programs loadable back into
// the host process.
//
// The cgen re-entrant mode (cgen::CgenOptions::reentrant) turns one compiled
// program into a C translation unit whose only exported symbol is a
// `ceu_aot_program_t` descriptor (aot_abi.hpp). This module batches a fleet's
// worth of such TUs, compiles them *once* with the host C compiler into a
// single shared object, dlopens it, and hands each program back as a
// descriptor the host::Instance facade can drive in place of an interpreter
// engine. The unit of compilation is the fleet, not the instance: 10k
// instances of 20 distinct programs cost 20 TUs and one cc invocation, and
// every instance is just one calloc'd `ceu_ctx_t`.
//
// Failure policy: building never throws. Every failure path — missing or
// broken compiler, cc error, dlopen refusal, descriptor/ABI mismatch,
// fingerprint drift between the .so and the in-memory program — reports a
// structured "aot: ..." string through the `err` out-param and returns an
// empty image/handle, so callers (ceuc --backend=aot, the differential
// harness, bench) can degrade to the interpreter deterministically.
//
// Thread-safety: a built FleetImage is immutable; descriptors are pure
// function tables and contexts are caller-owned, so distinct instances of
// the same compiled program can react on distinct worker threads (the
// generated code's only global is a _Thread_local current-context pointer).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cgen/aot_abi.hpp"
#include "codegen/flatten.hpp"

namespace ceu::aot {

struct BuildOptions {
    /// Host C compiler command. Probed by running it; a missing or broken
    /// compiler is a reported build failure, not a crash.
    std::string cc = "cc";
    /// Flags for the single fleet-wide link. -fPIC/-shared are required for
    /// the dlopen round-trip; -O2 is where the compiled series' speedup
    /// over the interpreter comes from.
    std::string cflags = "-std=c11 -O2 -fPIC -shared -w";
    /// Directory for the generated TUs and the .so. Empty: a fresh
    /// process-unique directory under $TMPDIR (or /tmp).
    std::string work_dir;
    /// Keep the .c/.so/.err artifacts after a successful load (debugging,
    /// and the toolchain failure-path tests poke at them).
    bool keep_artifacts = false;
};

class FleetImage;

/// One compiled program inside a loaded fleet image. The shared_ptr keeps
/// the dlopen handle (and therefore every function pointer in `desc`)
/// alive for as long as any instance context built from it exists.
struct ProgramHandle {
    std::shared_ptr<const FleetImage> image;
    const ceu_aot_program_t* desc = nullptr;

    [[nodiscard]] explicit operator bool() const { return desc != nullptr; }
};

/// A dlopen'd shared object holding one descriptor per fleet program.
class FleetImage : public std::enable_shared_from_this<FleetImage> {
  public:
    /// Emits one re-entrant TU per program, compiles them with one `cc`
    /// invocation, loads the resulting shared object and validates every
    /// descriptor (ABI version + per-program fingerprint). On any failure
    /// returns nullptr and, when `err` is non-null, an "aot: ..." message.
    static std::shared_ptr<const FleetImage> build(
        std::span<const std::shared_ptr<const flat::CompiledProgram>> programs,
        const BuildOptions& opt = {}, std::string* err = nullptr);

    /// dlopens an existing fleet shared object and validates its descriptors
    /// against `programs` (count, ABI version, fingerprints). Split out from
    /// build() so prebuilt images can be revalidated — and so the mismatch
    /// paths are directly testable without corrupting a compiler.
    static std::shared_ptr<const FleetImage> load(
        const std::string& so_path,
        std::span<const std::shared_ptr<const flat::CompiledProgram>> programs,
        std::string* err = nullptr);

    /// Convenience: single-program fleet. Empty handle on failure.
    static ProgramHandle build_one(std::shared_ptr<const flat::CompiledProgram> cp,
                                   const BuildOptions& opt = {},
                                   std::string* err = nullptr);

    FleetImage(const FleetImage&) = delete;
    FleetImage& operator=(const FleetImage&) = delete;
    ~FleetImage();

    [[nodiscard]] size_t size() const { return descs_.size(); }
    [[nodiscard]] const ceu_aot_program_t* descriptor(size_t i) const {
        return descs_[i];
    }
    /// Handle for program `i`, pinning this image.
    [[nodiscard]] ProgramHandle program(size_t i) const {
        return ProgramHandle{shared_from_this(), descs_[i]};
    }
    /// Path of the loaded shared object (unlinked already unless the build
    /// ran with keep_artifacts; the mapping stays valid regardless).
    [[nodiscard]] const std::string& so_path() const { return so_path_; }

  private:
    FleetImage() = default;
    void* dl_ = nullptr;
    std::string so_path_;
    std::vector<const ceu_aot_program_t*> descs_;
};

/// True when `opt.cc` looks runnable — the bench and CI gates use this to
/// self-skip instead of reporting a toolchain failure as a regression.
[[nodiscard]] bool toolchain_available(const BuildOptions& opt = {});

}  // namespace ceu::aot
