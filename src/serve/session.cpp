#include "serve/session.hpp"

#include <algorithm>

namespace ceu::serve {

// -- Registry -----------------------------------------------------------------

const Registry::Entry& Registry::add(const std::string& name,
                                     const std::string& source, Backend backend) {
    Entry e;
    e.name = name;
    e.cp = std::make_shared<const flat::CompiledProgram>(flat::compile(source));
    e.fingerprint = rt::program_fingerprint(*e.cp);
    e.backend = Backend::Interp;
    if (backend == Backend::Aot) {
        std::string err;
        aot::ProgramHandle h = aot::FleetImage::build_one(e.cp, {}, &err);
        if (h) {
            e.backend = Backend::Aot;
            e.aot = std::move(h);
        } else {
            e.aot_fallback = err.empty() ? "aot: build failed" : err;
        }
    }
    auto [it, fresh] = by_name_.insert_or_assign(name, std::move(e));
    if (fresh) order_.push_back(name);
    return it->second;
}

const Registry::Entry* Registry::find(const std::string& name) const {
    auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : &it->second;
}

const Registry::Entry* Registry::default_program() const {
    return order_.empty() ? nullptr : find(order_.front());
}

// -- SessionMap ---------------------------------------------------------------

SessionId SessionMap::open(std::unique_ptr<SessionState> st) {
    std::lock_guard<std::mutex> lock(mu_);
    SessionId id = next_++;
    st->id = id;
    map_.emplace(id, std::move(st));
    return id;
}

bool SessionMap::open_with_id(SessionId id, std::unique_ptr<SessionState> st) {
    std::lock_guard<std::mutex> lock(mu_);
    if (map_.count(id) != 0) return false;
    st->id = id;
    map_.emplace(id, std::move(st));
    if (id >= next_) next_ = id + 1;
    return true;
}

bool SessionMap::lookup(SessionId id, reactor::InstanceId& member) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(id);
    if (it == map_.end()) return false;
    member = it->second->member;
    return true;
}

SessionState* SessionMap::get(SessionId id) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(id);
    return it == map_.end() ? nullptr : it->second.get();
}

std::unique_ptr<SessionState> SessionMap::close(SessionId id) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(id);
    if (it == map_.end()) return nullptr;
    std::unique_ptr<SessionState> st = std::move(it->second);
    map_.erase(it);
    return st;
}

std::vector<SessionId> SessionMap::ids() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SessionId> out;
    out.reserve(map_.size());
    for (const auto& [id, st] : map_) out.push_back(id);
    std::sort(out.begin(), out.end());
    return out;
}

size_t SessionMap::size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

SessionId SessionMap::next_id() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_;
}

void SessionMap::reserve_ids_through(SessionId id) {
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= next_) next_ = id + 1;
}

}  // namespace ceu::serve
