#include "serve/wire.hpp"

#include <cstring>

#include "runtime/snapshot.hpp"

namespace ceu::serve {

namespace {

using rt::snap::ByteReader;
using rt::snap::ByteWriter;

/// Which optional fields a frame type carries, in encode order. Keeping
/// the schema in one table keeps encoder and decoder from drifting.
struct Schema {
    bool magic = false;        // kWireMagic + u32 version
    bool flags = false;        // u8
    bool verdict = false;      // u8
    bool session = false;      // u64
    bool ticket = false;       // u64
    bool fingerprint = false;  // u64
    bool value = false;        // i64
    bool ab = false;           // u32 a, u32 b
    bool text = false;         // str
    bool blob = false;         // u32 len + bytes
};

Schema schema_for(FrameType t) {
    Schema s;
    switch (t) {
        case FrameType::Hello:
            s.magic = s.flags = s.text = s.fingerprint = true;
            break;
        case FrameType::Open:
            s.text = true;
            break;
        case FrameType::Inject:
            s.session = s.text = s.value = true;
            break;
        case FrameType::Advance:
            s.value = true;
            break;
        case FrameType::Detach:
        case FrameType::Close:
            s.session = true;
            break;
        case FrameType::Resume:
            s.session = s.text = s.blob = true;
            break;
        case FrameType::Bye:
            break;
        case FrameType::Ping:
        case FrameType::Pong:
            s.ticket = true;
            break;
        case FrameType::Welcome:
            s.magic = s.fingerprint = true;
            break;
        case FrameType::SessionOpened:
        case FrameType::SessionClosed:
            s.session = true;
            break;
        case FrameType::InjectReply:
            s.session = s.verdict = s.ticket = true;
            break;
        case FrameType::Advanced:
            s.value = true;
            break;
        case FrameType::Detached:
            s.session = s.blob = true;
            break;
        case FrameType::Output:
            s.session = s.text = true;
            break;
        case FrameType::Span:
            s.session = s.verdict = s.ticket = s.value = s.ab = true;
            break;
        case FrameType::SessionStatus:
            s.session = s.flags = true;
            break;
        case FrameType::Error:
        case FrameType::Shutdown:
            s.text = true;
            break;
    }
    return s;
}

bool known_type(uint8_t raw) {
    return (raw >= 1 && raw <= 9) || (raw >= 65 && raw <= 76);
}

}  // namespace

const char* frame_type_name(FrameType t) {
    switch (t) {
        case FrameType::Hello: return "Hello";
        case FrameType::Open: return "Open";
        case FrameType::Inject: return "Inject";
        case FrameType::Advance: return "Advance";
        case FrameType::Detach: return "Detach";
        case FrameType::Resume: return "Resume";
        case FrameType::Close: return "Close";
        case FrameType::Bye: return "Bye";
        case FrameType::Ping: return "Ping";
        case FrameType::Welcome: return "Welcome";
        case FrameType::SessionOpened: return "SessionOpened";
        case FrameType::InjectReply: return "InjectReply";
        case FrameType::Advanced: return "Advanced";
        case FrameType::Detached: return "Detached";
        case FrameType::Output: return "Output";
        case FrameType::Span: return "Span";
        case FrameType::Error: return "Error";
        case FrameType::Shutdown: return "Shutdown";
        case FrameType::SessionClosed: return "SessionClosed";
        case FrameType::Pong: return "Pong";
        case FrameType::SessionStatus: return "SessionStatus";
    }
    return "?";
}

void encode_frame(const Frame& f, std::vector<uint8_t>& out) {
    std::vector<uint8_t> payload;
    ByteWriter w(payload);
    w.u8(static_cast<uint8_t>(f.type));
    Schema s = schema_for(f.type);
    if (s.magic) {
        w.bytes(reinterpret_cast<const uint8_t*>(kWireMagic), sizeof kWireMagic);
        w.u32(f.version != 0 ? f.version : kWireVersion);
    }
    if (s.flags) w.u8(f.flags);
    if (s.verdict) w.u8(f.verdict);
    if (s.session) w.u64(f.session);
    if (s.ticket) w.u64(f.ticket);
    if (s.fingerprint) w.u64(f.fingerprint);
    if (s.value) w.i64(f.value);
    if (s.ab) {
        w.u32(f.a);
        w.u32(f.b);
    }
    if (s.text) w.str(f.text);
    if (s.blob) {
        w.u32(static_cast<uint32_t>(f.blob.size()));
        w.bytes(f.blob.data(), f.blob.size());
    }
    if (payload.size() > kMaxPayload) {
        throw WireError("frame payload exceeds kMaxPayload");
    }
    ByteWriter prefix(out);
    prefix.u32(static_cast<uint32_t>(payload.size()));
    prefix.bytes(payload.data(), payload.size());
}

Frame decode_frame(const uint8_t* payload, size_t n) {
    // ByteReader throws SnapshotError on truncation; translate to WireError
    // so callers see one exception type for every malformed-frame shape.
    try {
        ByteReader r(payload, n);
        uint8_t raw = r.u8();
        if (!known_type(raw)) {
            throw WireError("unknown frame type " + std::to_string(raw));
        }
        Frame f;
        f.type = static_cast<FrameType>(raw);
        Schema s = schema_for(f.type);
        if (s.magic) {
            char magic[sizeof kWireMagic];
            for (char& c : magic) c = static_cast<char>(r.u8());
            if (std::memcmp(magic, kWireMagic, sizeof kWireMagic) != 0) {
                throw WireError("bad magic (not a CEUWIRE1 stream)");
            }
            f.version = r.u32();
        }
        if (s.flags) f.flags = r.u8();
        if (s.verdict) f.verdict = r.u8();
        if (s.session) f.session = r.u64();
        if (s.ticket) f.ticket = r.u64();
        if (s.fingerprint) f.fingerprint = r.u64();
        if (s.value) f.value = r.i64();
        if (s.ab) {
            f.a = r.u32();
            f.b = r.u32();
        }
        if (s.text) f.text = r.str();
        if (s.blob) {
            uint32_t len = r.count(1);
            f.blob.resize(len);
            for (uint32_t i = 0; i < len; ++i) f.blob[i] = r.u8();
        }
        if (!r.done()) throw WireError("trailing bytes after frame fields");
        return f;
    } catch (const rt::snap::SnapshotError& e) {
        throw WireError(std::string("truncated frame (") + e.what() + ")");
    }
}

void FrameReader::feed(const uint8_t* data, size_t n) {
    // Compact the consumed prefix before growing — a long-lived connection
    // must not accumulate every byte it ever received.
    if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 4096)) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + n);
    // Reject a hostile length as soon as its prefix is visible — don't wait
    // for next() and don't buffer toward a cap we will never accept. pos_
    // always sits on a frame boundary, so the peek is a real prefix.
    if (buf_.size() - pos_ >= 4) {
        uint32_t len = 0;
        for (int i = 0; i < 4; ++i) {
            len |= static_cast<uint32_t>(buf_[pos_ + static_cast<size_t>(i)])
                   << (8 * i);
        }
        if (len > kMaxPayload) {
            throw WireError("frame length " + std::to_string(len) +
                            " exceeds cap");
        }
    }
}

bool FrameReader::next(Frame& out) {
    if (buf_.size() - pos_ < 4) return false;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
        len |= static_cast<uint32_t>(buf_[pos_ + static_cast<size_t>(i)]) << (8 * i);
    }
    if (len > kMaxPayload) {
        throw WireError("frame length " + std::to_string(len) + " exceeds cap");
    }
    if (buf_.size() - pos_ - 4 < len) return false;
    out = decode_frame(buf_.data() + pos_ + 4, len);
    pos_ += 4 + len;
    return true;
}

}  // namespace ceu::serve
