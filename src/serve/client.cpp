#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ceu::serve {

Client::~Client() { disconnect(); }

void Client::connect(uint16_t port, const std::string& program, bool want_spans,
                     uint64_t expect_fingerprint) {
    if (fd_ >= 0) throw ClientError("already connected");
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw ClientError("socket() failed");
    int yes = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof yes);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd_);
        fd_ = -1;
        throw ClientError("connect() to port " + std::to_string(port) +
                          " failed: " + std::strerror(errno));
    }
    Frame hello;
    hello.type = FrameType::Hello;
    hello.version = kWireVersion;
    hello.flags = want_spans ? 1 : 0;
    hello.text = program;
    hello.fingerprint = expect_fingerprint;
    send_raw(hello);
    Frame w = wait_for(FrameType::Welcome);
    fingerprint_ = w.fingerprint;
}

void Client::disconnect() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void Client::send_raw(const Frame& f) {
    std::vector<uint8_t> bytes;
    encode_frame(f, bytes);
    size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            throw ClientError("send failed (connection lost)");
        }
        off += static_cast<size_t>(n);
    }
}

bool Client::read_more() {
    uint8_t buf[64 * 1024];
    ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
        reader_.feed(buf, static_cast<size_t>(n));
        return true;
    }
    if (n < 0 && errno == EINTR) return true;
    return false;
}

Frame Client::wait_for(FrameType want) {
    Frame f;
    for (;;) {
        while (reader_.next(f)) {
            switch (f.type) {
                case FrameType::Output:
                    outputs_[f.session].push_back(f.text);
                    break;
                case FrameType::Span:
                    spans_[f.session].push_back(f);
                    break;
                case FrameType::SessionStatus:
                    statuses_[f.session].push_back(f.flags);
                    break;
                case FrameType::Shutdown:
                    shutdown_seen_ = true;
                    break;
                case FrameType::Error:
                    last_error_ = f.text;
                    throw ClientError("server error: " + f.text);
                default:
                    if (f.type == want) return f;
                    // A reply we did not expect right now: protocol misuse
                    // on our side — fail loudly.
                    throw ClientError(std::string("unexpected ") +
                                      frame_type_name(f.type) + " while waiting for " +
                                      frame_type_name(want));
            }
        }
        if (!read_more()) {
            throw ClientError(std::string("connection closed while waiting for ") +
                              frame_type_name(want));
        }
    }
}

uint64_t Client::open(const std::string& program) {
    Frame f;
    f.type = FrameType::Open;
    f.text = program;
    send_raw(f);
    return wait_for(FrameType::SessionOpened).session;
}

Frame Client::inject(uint64_t session, const std::string& event, int64_t value) {
    Frame f;
    f.type = FrameType::Inject;
    f.session = session;
    f.text = event;
    f.value = value;
    send_raw(f);
    return wait_for(FrameType::InjectReply);
}

int64_t Client::advance(int64_t delta_us) {
    Frame f;
    f.type = FrameType::Advance;
    f.value = delta_us;
    send_raw(f);
    return wait_for(FrameType::Advanced).value;
}

std::vector<uint8_t> Client::detach(uint64_t session) {
    Frame f;
    f.type = FrameType::Detach;
    f.session = session;
    send_raw(f);
    return wait_for(FrameType::Detached).blob;
}

uint64_t Client::resume(uint64_t session, const std::vector<uint8_t>& blob,
                        const std::string& program) {
    Frame f;
    f.type = FrameType::Resume;
    f.session = session;
    f.blob = blob;
    f.text = program;
    send_raw(f);
    return wait_for(FrameType::SessionOpened).session;
}

void Client::close_session(uint64_t session) {
    Frame f;
    f.type = FrameType::Close;
    f.session = session;
    send_raw(f);
    wait_for(FrameType::SessionClosed);
}

void Client::ping() {
    Frame f;
    f.type = FrameType::Ping;
    f.ticket = next_nonce_++;
    send_raw(f);
    Frame pong = wait_for(FrameType::Pong);
    if (pong.ticket != f.ticket) {
        throw ClientError("pong nonce mismatch");
    }
}

void Client::bye() {
    Frame f;
    f.type = FrameType::Bye;
    send_raw(f);
    // Drain whatever the server flushes until it closes its write side —
    // streamed frames still land in the logs.
    Frame g;
    for (;;) {
        try {
            while (reader_.next(g)) {
                switch (g.type) {
                    case FrameType::Output:
                        outputs_[g.session].push_back(g.text);
                        break;
                    case FrameType::Span:
                        spans_[g.session].push_back(g);
                        break;
                    case FrameType::SessionStatus:
                        statuses_[g.session].push_back(g.flags);
                        break;
                    case FrameType::Shutdown:
                        shutdown_seen_ = true;
                        break;
                    default:
                        break;
                }
            }
        } catch (const WireError&) {
            break;
        }
        if (!read_more()) break;
    }
    disconnect();
}

namespace {
const std::vector<std::string> kNoOutputs;
const std::vector<Frame> kNoSpans;
const std::vector<uint8_t> kNoStatuses;
}  // namespace

const std::vector<std::string>& Client::outputs(uint64_t session) const {
    auto it = outputs_.find(session);
    return it == outputs_.end() ? kNoOutputs : it->second;
}

const std::vector<Frame>& Client::spans(uint64_t session) const {
    auto it = spans_.find(session);
    return it == spans_.end() ? kNoSpans : it->second;
}

const std::vector<uint8_t>& Client::statuses(uint64_t session) const {
    auto it = statuses_.find(session);
    return it == statuses_.end() ? kNoStatuses : it->second;
}

std::string Client::trace_text(uint64_t session) const {
    std::string out;
    for (const std::string& line : outputs(session)) {
        out += line;
        out += '\n';
    }
    return out;
}

}  // namespace ceu::serve
