// Program registry + session map: the server's two name services.
//
// Registry  — named programs a client may Open. Each entry owns the shared
//             CompiledProgram (one copy, co-owned by every session booted
//             from it — the fleet memory model) plus, when the AOT backend
//             was requested and the toolchain cooperated, a compiled
//             ProgramHandle. AOT failure is not an error: the entry
//             degrades to the interpreter and records why (the same
//             structured-fallback policy as `ceuc --backend=aot`).
//             Immutable after server start; read from any thread.
//
// SessionMap — wire session id → live session state. Written by the
//             control thread (open/close/detach are control ops between
//             rounds); read by io threads resolving an Inject's target
//             under the map lock. The per-session *streaming* buffers
//             (pending outputs/spans/status) are deliberately NOT under
//             the map lock: they are written by the owning shard's worker
//             during a round and harvested by the control thread between
//             rounds — the reactor's round barrier is the synchronization.
//             SessionState lives behind a unique_ptr so those in-round
//             writers hold stable pointers across map rehashes.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "aot/aot.hpp"
#include "codegen/flatten.hpp"
#include "reactor/reactor.hpp"
#include "runtime/engine.hpp"

namespace ceu::serve {

using SessionId = uint64_t;

enum class Backend : uint8_t { Interp = 0, Aot = 1 };

/// One reaction-span digest queued for streaming (the wire Span frame's
/// fields — full ReactionSpans are too heavy to ship per reaction).
struct SpanDigest {
    uint8_t kind = 0;
    uint64_t seq = 0;
    int64_t ts = 0;
    uint32_t wakes = 0;
    uint32_t emits = 0;
};

class Registry {
  public:
    struct Entry {
        std::string name;
        std::shared_ptr<const flat::CompiledProgram> cp;
        uint64_t fingerprint = 0;
        Backend backend = Backend::Interp;
        aot::ProgramHandle aot;       ///< set iff backend == Aot
        std::string aot_fallback;     ///< why an Aot request degraded (empty = fine)
    };

    /// Compiles `source` and registers it under `name`. The first program
    /// added is the default. With `backend == Aot`, attempts an AOT build;
    /// on failure the entry serves the interpreter and keeps the reason.
    /// Throws CompileError on bad source. Call before serving starts.
    const Entry& add(const std::string& name, const std::string& source,
                     Backend backend = Backend::Interp);

    [[nodiscard]] const Entry* find(const std::string& name) const;
    [[nodiscard]] const Entry* default_program() const;
    [[nodiscard]] size_t size() const { return order_.size(); }

  private:
    std::unordered_map<std::string, Entry> by_name_;
    std::vector<std::string> order_;
};

/// Everything the server tracks per live session.
struct SessionState {
    SessionId id = 0;
    reactor::InstanceId member = 0;
    int conn_fd = -1;              ///< owning connection (-1 = orphaned)
    std::string program;           ///< registry entry name
    Backend backend = Backend::Interp;
    bool want_spans = false;

    // In-round streaming buffers: written by the owning shard's worker via
    // the instance's embedder sinks, drained by the control thread between
    // rounds (see header comment for why this is race-free).
    std::vector<std::string> pending_out;
    std::vector<SpanDigest> pending_spans;
    std::vector<uint8_t> pending_status;  ///< rt::Engine::Status values
};

class SessionMap {
  public:
    /// Registers `st` under a fresh id (assigned, monotonically increasing)
    /// and returns it.
    SessionId open(std::unique_ptr<SessionState> st);
    /// Registers `st` under a caller-chosen id — the drain-resume path,
    /// where the pre-drain id must survive so client traces line up.
    /// Returns false (and drops nothing) if the id is taken; bumps the
    /// internal counter past `id` so assigned ids never collide.
    bool open_with_id(SessionId id, std::unique_ptr<SessionState> st);

    /// Io-thread path: resolves a session to its reactor member. Returns
    /// false if the id is unknown (closed, detached, never existed).
    bool lookup(SessionId id, reactor::InstanceId& member) const;

    /// Control-thread path: borrow the full state. nullptr if unknown. The
    /// pointer stays valid until close(id) — states are never moved.
    [[nodiscard]] SessionState* get(SessionId id);

    /// Removes the session; returns the state (so the caller can retire
    /// the member / flush remnants) or nullptr if unknown.
    std::unique_ptr<SessionState> close(SessionId id);

    /// Ids of every live session, ascending — the deterministic iteration
    /// order for flushes and drain.
    [[nodiscard]] std::vector<SessionId> ids() const;

    [[nodiscard]] size_t size() const;
    /// Next id that open() would assign (drain manifest bookkeeping).
    [[nodiscard]] SessionId next_id() const;
    /// Floors the assignment counter (restart-from-drain path).
    void reserve_ids_through(SessionId id);

  private:
    mutable std::mutex mu_;
    std::unordered_map<SessionId, std::unique_ptr<SessionState>> map_;
    SessionId next_ = 1;
};

}  // namespace ceu::serve
