// serve::Server — the reactor as a network service.
//
// One process hosts one `reactor::Reactor` (1..N workers) and exposes it
// over TCP speaking CEUWIRE1 (wire.hpp): sessions are reactor members
// created on Open from a named program registry (interpreter or AOT
// backend), events flow through the existing any-thread ticket-ordered
// `Reactor::inject()` path, and everything a session produces — output
// lines, reaction-span digests, status transitions — streams back through
// the `host::Instance` embedder-sink surface. No serve code reaches into
// engine internals.
//
// Threading model (mirrors the reactor's own contract):
//   - The *control* thread owns everything with a between-rounds contract:
//     accept, session open/close/detach/resume, fleet-clock advances,
//     scheduling rounds, and harvesting the per-session streaming buffers
//     that shard workers filled during the round.
//   - Optional *io* threads (ServerConfig::io_threads) each epoll a share
//     of the connections. An Inject frame takes the fast path — a direct
//     lock-free `Reactor::inject()` from the io thread plus an immediate
//     InjectReply — unless an earlier frame from the same connection is
//     still queued for the control thread (the per-connection
//     `pending_ops` counter), in which case it queues too: per-connection
//     frame order is preserved exactly, which is what the determinism
//     contract needs. All other frames are control ops.
//   - A connection's socket is only ever written by its owning thread;
//     other threads fill its outbox (mutex) and kick the owner (eventfd).
//
// Determinism: time is virtual (Advance frames), never wall-clock, and a
// pending-event round runs *before* an Advance is applied, so "inject then
// advance" on one connection keeps script semantics. A recorded script
// replayed through one connection produces byte-identical per-session
// streams whatever the worker count — `ctest -L serve` gates 1/2/8.
//
// Graceful drain: request_stop() (async-signal-safe — the SIGTERM handler
// calls it) makes the control thread stop accepting, notify clients
// (Shutdown), run `Reactor::drain_and_checkpoint()`, and write every live
// interpreted session's CEUHST01 blob plus a MANIFEST into
// ServerConfig::drain_dir. A server started with ServerConfig::resume_dir
// pointing there restores the fleet clock and serves Resume frames for the
// drained ids — traces continue byte-identical-thereafter. AOT-backed
// sessions are skipped with a manifest note: CEUAOT01 images are
// same-process-only (see ROADMAP, AOT gaps).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "reactor/reactor.hpp"
#include "serve/session.hpp"
#include "serve/wire.hpp"

namespace ceu::serve {

struct ServerConfig {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral; read back via port()).
    uint16_t port = 0;
    /// Reactor worker threads (the fleet's shards).
    size_t workers = 1;
    /// Extra inject-fast-path io threads. 0 = the control thread owns all
    /// connections too (simplest; fine up to moderate connection counts).
    size_t io_threads = 0;
    /// Per-member inbox bound forwarded to the reactor (0 = unbounded).
    uint32_t inbox_capacity = 0;
    /// Where SIGTERM drain writes checkpoints (empty = drain discards).
    std::string drain_dir;
    /// Where to look for a previous drain's MANIFEST at startup.
    std::string resume_dir;
    /// Round cap for quiescing drains (Ping barriers, Detach, shutdown).
    size_t drain_round_cap = 1'000'000;
};

/// Monotonic service counters (relaxed atomics; bench/tools sample them).
struct ServerCounters {
    std::atomic<uint64_t> connections{0};
    std::atomic<uint64_t> sessions_opened{0};
    std::atomic<uint64_t> sessions_resumed{0};
    std::atomic<uint64_t> injects{0};
    std::atomic<uint64_t> outputs{0};
    std::atomic<uint64_t> drained{0};
};

class Server {
  public:
    /// The registry is fixed at construction (immutable while serving).
    Server(Registry registry, ServerConfig cfg);
    ~Server();
    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Binds + starts the control (and io) threads. Throws std::runtime_error
    /// on socket failure. Returns once the listener is live.
    void start();
    /// Bound port (valid after start()).
    [[nodiscard]] uint16_t port() const { return port_; }

    /// Begins shutdown: stop accepting, notify clients, drain + checkpoint.
    /// Async-signal-safe (atomic store + eventfd write).
    void request_stop();
    /// Blocks until the server fully stopped (drain included).
    void wait();
    [[nodiscard]] bool stopped() const {
        return state_.load(std::memory_order_acquire) == State::Stopped;
    }

    [[nodiscard]] const ServerCounters& counters() const { return counters_; }
    [[nodiscard]] size_t live_sessions() const { return sessions_.size(); }

  private:
    struct Conn {
        int fd = -1;
        size_t io_idx = SIZE_MAX;      // owning io thread (SIZE_MAX = control)
        FrameReader reader;
        bool hello_done = false;
        bool want_spans = false;
        std::string default_program;
        // Written by the owner (dead) / control (closing), but read across
        // that boundary: control's drain paths poll any conn's dead flag,
        // and an io owner polls closing. Atomic — the readers are advisory
        // (a stale read just defers the action one wakeup).
        std::atomic<bool> dead{false};  // owner stopped reading it
        std::atomic<bool> closing{false};  // graceful: shut write once flushed
        std::vector<SessionId> sessions;  // control thread only

        // Any-thread: frames queued to control but not yet processed. While
        // nonzero, the owner must queue Injects too (order preservation).
        std::atomic<uint32_t> pending_ops{0};

        // Outbox: filled under mutex by control or owner, drained by owner.
        std::mutex out_mu;
        std::vector<uint8_t> outbox;
        bool want_writable = false;    // EPOLLOUT armed (owner thread only)
    };

    struct Op {
        enum class Kind : uint8_t { Frame, ConnDead } kind = Kind::Frame;
        Conn* conn = nullptr;
        Frame frame;
    };

    struct IoThread {
        int epfd = -1;
        int kickfd = -1;
        std::thread th;
        std::mutex staging_mu;
        std::vector<Conn*> staging;    // control -> io: adopt these conns
        std::vector<Conn*> conns;      // io thread private
    };

    /// One drained-to-disk session (parsed from a resume_dir MANIFEST).
    struct DrainedSession {
        std::string program;
        std::string path;  // snapshot file
    };

    enum class State : uint8_t { Idle, Running, Stopped };

    // -- control thread --------------------------------------------------------
    void control_main();
    void accept_ready();
    void process_ops();
    void handle_frame_op(Conn* conn, const Frame& f);
    void handle_open(Conn* conn, const Frame& f);
    void handle_resume(Conn* conn, const Frame& f);
    void handle_detach(Conn* conn, const Frame& f);
    void handle_close_session(Conn* conn, const Frame& f);
    void quiesce();                       ///< rounds until !work_pending (capped)
    void harvest_sessions();              ///< pending buffers -> conn outboxes
    void harvest_one(SessionState* st);
    void drop_conn(Conn* conn);           ///< orphan sessions, close fd, free
    void drain_to_disk();
    void load_resume_manifest();
    SessionState* create_session(Conn* conn, const Registry::Entry& entry,
                                 const std::vector<uint8_t>* blob,
                                 SessionId want_id, std::string* err);

    // -- owner-thread io (control for its conns, io threads for theirs) -------
    void io_main(size_t idx);
    void owner_read(Conn* conn);          ///< drain socket, dispatch frames
    void owner_dispatch(Conn* conn, Frame&& f);
    void owner_flush(Conn* conn);         ///< write outbox (partial-safe)
    void queue_op(Op op);
    void kick_control();
    void kick_io(size_t idx);

    // -- helpers ---------------------------------------------------------------
    void send_frame(Conn* conn, const Frame& f);  ///< outbox append (any thread)
    void send_error(Conn* conn, const std::string& msg);
    static void set_nonblocking(int fd);

    Registry registry_;
    ServerConfig cfg_;
    reactor::Reactor reactor_;
    SessionMap sessions_;
    ServerCounters counters_;

    int listen_fd_ = -1;
    int control_epfd_ = -1;
    int control_kick_ = -1;
    uint16_t port_ = 0;
    std::atomic<State> state_{State::Idle};
    std::atomic<bool> stop_requested_{false};
    std::thread control_th_;
    std::vector<std::unique_ptr<IoThread>> io_;
    std::atomic<bool> io_stop_{false};

    std::mutex ops_mu_;
    std::vector<Op> ops_;

    // Conns are created on accept (control thread). drop_conn moves them to
    // the graveyard rather than freeing: the owning io thread may still see
    // the pointer until its next wakeup prunes dead entries.
    std::map<int, std::unique_ptr<Conn>> conns_;
    std::vector<std::unique_ptr<Conn>> dead_conns_;

    std::map<SessionId, DrainedSession> drained_;  // resume_dir inventory
    int64_t resumed_fleet_now_ = 0;
};

}  // namespace ceu::serve
