// serve::Client — a blocking CEUWIRE1 client.
//
// The reference consumer of the wire protocol: the `ceu-client` replay
// tool, the serve test suite, and the bench all speak through this class.
// One connection, synchronous request/reply: each call sends its frame and
// reads until the matching reply type arrives, side-collecting every
// streamed frame (Output/Span/SessionStatus) into per-session logs on the
// way. `outputs(session)` after a `ping()` barrier is therefore the
// complete, ordered output trace of that session — the byte-identical
// artifact the determinism gates compare.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace ceu::serve {

class ClientError : public std::runtime_error {
  public:
    explicit ClientError(const std::string& msg)
        : std::runtime_error("client: " + msg) {}
};

class Client {
  public:
    Client() = default;
    ~Client();
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /// Connects to 127.0.0.1:`port`, performs the Hello/Welcome handshake.
    /// `program` picks the connection's default registry entry;
    /// `expect_fingerprint` != 0 makes the server enforce it. Throws
    /// ClientError on refusal (wrong version, unknown program, mismatch).
    void connect(uint16_t port, const std::string& program = "",
                 bool want_spans = false, uint64_t expect_fingerprint = 0);
    void disconnect();
    [[nodiscard]] bool connected() const { return fd_ >= 0; }

    /// Program fingerprint the server reported in Welcome.
    [[nodiscard]] uint64_t fingerprint() const { return fingerprint_; }

    /// Opens a session (empty = connection default program).
    uint64_t open(const std::string& program = "");
    /// Injects one occurrence; returns the InjectReply (verdict + ticket).
    Frame inject(uint64_t session, const std::string& event, int64_t value = 0);
    /// Advances the fleet clock; returns the new fleet instant (µs).
    int64_t advance(int64_t delta_us);
    /// Detaches the session; returns its CEUHST01 snapshot blob.
    std::vector<uint8_t> detach(uint64_t session);
    /// Resumes: live reattach (blob empty, session = live id), blob restore
    /// (blob non-empty; session = preferred id or 0), or drained-snapshot
    /// restore (blob empty, session = pre-drain id). Returns the session id.
    uint64_t resume(uint64_t session, const std::vector<uint8_t>& blob = {},
                    const std::string& program = "");
    void close_session(uint64_t session);
    /// Barrier: returns once the server has reacted to everything this
    /// client injected before and flushed the resulting streams.
    void ping();
    /// Graceful goodbye; the server flushes and closes its side.
    void bye();

    /// Every Output line received so far for `session`, in order.
    [[nodiscard]] const std::vector<std::string>& outputs(uint64_t session) const;
    /// Span digests (kind, seq, ts, wakes, emits packed in Frame fields).
    [[nodiscard]] const std::vector<Frame>& spans(uint64_t session) const;
    /// Status transition values (rt::Engine::Status as u8), in order.
    [[nodiscard]] const std::vector<uint8_t>& statuses(uint64_t session) const;
    /// One flat text rendering of a session's trace — what the determinism
    /// gates hash and diff.
    [[nodiscard]] std::string trace_text(uint64_t session) const;

    /// Last Error frame text received (empty = none). Errors addressed to a
    /// pending request also raise ClientError from that call.
    [[nodiscard]] const std::string& last_error() const { return last_error_; }
    /// True once the server announced Shutdown.
    [[nodiscard]] bool server_shutdown() const { return shutdown_seen_; }

  private:
    void send_raw(const Frame& f);
    /// Reads frames until one of type `want` arrives (streamed frames are
    /// collected en route). Error frames raise ClientError; EOF raises
    /// ClientError unless `eof_ok`.
    Frame wait_for(FrameType want);
    bool read_more();  ///< false on orderly EOF

    int fd_ = -1;
    FrameReader reader_;
    uint64_t fingerprint_ = 0;
    uint64_t next_nonce_ = 1;
    std::string last_error_;
    bool shutdown_seen_ = false;
    std::map<uint64_t, std::vector<std::string>> outputs_;
    std::map<uint64_t, std::vector<Frame>> spans_;
    std::map<uint64_t, std::vector<uint8_t>> statuses_;
};

}  // namespace ceu::serve
