#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "host/instance.hpp"
#include "reactor/verdict.hpp"
#include "runtime/snapshot.hpp"

namespace ceu::serve {

namespace {

constexpr size_t kReadChunk = 64 * 1024;
constexpr char kManifestMagic[] = "CEUSRV01";

// epoll_event.data sentinels on the control epoll (real conns carry their
// pointer, which is always > 1).
constexpr uint64_t kDataListen = 0;
constexpr uint64_t kDataKick = 1;

void eventfd_signal(int fd) {
    uint64_t one = 1;
    // write() is async-signal-safe; a full counter (EAGAIN) still wakes.
    [[maybe_unused]] ssize_t n = ::write(fd, &one, sizeof one);
}

void eventfd_drain(int fd) {
    uint64_t v;
    while (::read(fd, &v, sizeof v) > 0) {
    }
}

}  // namespace

Server::Server(Registry registry, ServerConfig cfg)
    : registry_(std::move(registry)),
      cfg_(cfg),
      reactor_([&] {
          reactor::ReactorConfig rc;
          rc.workers = cfg.workers;
          rc.inbox_capacity = cfg.inbox_capacity;
          return rc;
      }()) {
    // Between-round harvest hook: long drains (Detach, Ping, shutdown)
    // stream their outputs per round instead of buffering everything.
    reactor_.on_round_end = [this] { harvest_sessions(); };
}

Server::~Server() {
    request_stop();
    wait();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (control_epfd_ >= 0) ::close(control_epfd_);
    if (control_kick_ >= 0) ::close(control_kick_);
}

void Server::set_nonblocking(int fd) {
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void Server::start() {
    if (state_.load(std::memory_order_acquire) != State::Idle) {
        throw std::runtime_error("serve: start() called twice");
    }
    if (registry_.size() == 0) {
        throw std::runtime_error("serve: registry has no programs");
    }
    if (!cfg_.resume_dir.empty()) load_resume_manifest();

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
    int yes = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof yes);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(cfg_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        throw std::runtime_error("serve: bind() failed: " +
                                 std::string(std::strerror(errno)));
    }
    socklen_t alen = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
    port_ = ntohs(addr.sin_port);
    if (::listen(listen_fd_, 512) != 0) {
        throw std::runtime_error("serve: listen() failed");
    }
    set_nonblocking(listen_fd_);

    control_epfd_ = ::epoll_create1(0);
    control_kick_ = ::eventfd(0, EFD_NONBLOCK);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kDataListen;
    ::epoll_ctl(control_epfd_, EPOLL_CTL_ADD, listen_fd_, &ev);
    ev.data.u64 = kDataKick;
    ::epoll_ctl(control_epfd_, EPOLL_CTL_ADD, control_kick_, &ev);

    for (size_t i = 0; i < cfg_.io_threads; ++i) {
        auto io = std::make_unique<IoThread>();
        io->epfd = ::epoll_create1(0);
        io->kickfd = ::eventfd(0, EFD_NONBLOCK);
        epoll_event kev{};
        kev.events = EPOLLIN;
        kev.data.ptr = nullptr;  // nullptr marks the kick fd on io epolls
        ::epoll_ctl(io->epfd, EPOLL_CTL_ADD, io->kickfd, &kev);
        io_.push_back(std::move(io));
    }

    state_.store(State::Running, std::memory_order_release);
    for (size_t i = 0; i < io_.size(); ++i) {
        io_[i]->th = std::thread([this, i] { io_main(i); });
    }
    control_th_ = std::thread([this] { control_main(); });
}

void Server::request_stop() {
    stop_requested_.store(true, std::memory_order_release);
    if (control_kick_ >= 0) eventfd_signal(control_kick_);
}

void Server::wait() {
    if (control_th_.joinable()) control_th_.join();
}

// -- outbox / framing helpers -------------------------------------------------

void Server::send_frame(Conn* conn, const Frame& f) {
    {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        encode_frame(f, conn->outbox);
    }
    if (f.type == FrameType::Output) {
        counters_.outputs.fetch_add(1, std::memory_order_relaxed);
    }
}

void Server::send_error(Conn* conn, const std::string& msg) {
    Frame f;
    f.type = FrameType::Error;
    f.text = msg;
    send_frame(conn, f);
}

void Server::queue_op(Op op) {
    {
        std::lock_guard<std::mutex> lock(ops_mu_);
        ops_.push_back(std::move(op));
    }
    kick_control();
}

void Server::kick_control() { eventfd_signal(control_kick_); }

void Server::kick_io(size_t idx) { eventfd_signal(io_[idx]->kickfd); }

// -- owner-thread socket handling --------------------------------------------

void Server::owner_flush(Conn* conn) {
    if (conn->fd < 0) return;
    std::vector<uint8_t> batch;
    {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        batch.swap(conn->outbox);
    }
    size_t off = 0;
    while (off < batch.size()) {
        ssize_t n = ::send(conn->fd, batch.data() + off, batch.size() - off,
                           MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        // Hard write error: the conn is gone; drop the rest.
        if (!conn->dead) {
            conn->dead = true;
            int epfd = conn->io_idx == SIZE_MAX ? control_epfd_
                                                : io_[conn->io_idx]->epfd;
            ::epoll_ctl(epfd, EPOLL_CTL_DEL, conn->fd, nullptr);
            queue_op({Op::Kind::ConnDead, conn, {}});
        }
        return;
    }
    if (off < batch.size()) {
        // Put the unwritten tail back *in front of* anything appended since.
        std::lock_guard<std::mutex> lock(conn->out_mu);
        conn->outbox.insert(conn->outbox.begin(),
                            batch.begin() + static_cast<std::ptrdiff_t>(off),
                            batch.end());
        if (!conn->want_writable) {
            conn->want_writable = true;
            epoll_event ev{};
            ev.events = EPOLLIN | EPOLLOUT;
            ev.data.ptr = conn;
            int epfd = conn->io_idx == SIZE_MAX ? control_epfd_
                                                : io_[conn->io_idx]->epfd;
            ::epoll_ctl(epfd, EPOLL_CTL_MOD, conn->fd, &ev);
        }
        return;
    }
    if (conn->want_writable) {
        conn->want_writable = false;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.ptr = conn;
        int epfd = conn->io_idx == SIZE_MAX ? control_epfd_ : io_[conn->io_idx]->epfd;
        ::epoll_ctl(epfd, EPOLL_CTL_MOD, conn->fd, &ev);
    }
    if (conn->closing) {
        bool empty;
        {
            std::lock_guard<std::mutex> lock(conn->out_mu);
            empty = conn->outbox.empty();
        }
        if (empty && !conn->dead) {
            ::shutdown(conn->fd, SHUT_WR);
            conn->dead = true;
            int epfd = conn->io_idx == SIZE_MAX ? control_epfd_
                                                : io_[conn->io_idx]->epfd;
            ::epoll_ctl(epfd, EPOLL_CTL_DEL, conn->fd, nullptr);
            queue_op({Op::Kind::ConnDead, conn, {}});
        }
    }
}

void Server::owner_read(Conn* conn) {
    if (conn->dead) return;
    uint8_t buf[kReadChunk];
    bool eof = false;
    for (;;) {
        ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
        if (n > 0) {
            try {
                conn->reader.feed(buf, static_cast<size_t>(n));
            } catch (const WireError&) {
                eof = true;
                break;
            }
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        eof = true;  // orderly EOF or hard error
        break;
    }
    Frame f;
    try {
        while (!conn->dead && conn->reader.next(f)) {
            owner_dispatch(conn, std::move(f));
            f = Frame{};
        }
    } catch (const WireError& e) {
        // Framing violation: report and kill the connection.
        send_error(conn, e.what());
        owner_flush(conn);
        eof = true;
    }
    if (eof && !conn->dead) {
        conn->dead = true;
        int epfd = conn->io_idx == SIZE_MAX ? control_epfd_ : io_[conn->io_idx]->epfd;
        ::epoll_ctl(epfd, EPOLL_CTL_DEL, conn->fd, nullptr);
        queue_op({Op::Kind::ConnDead, conn, {}});
    }
}

void Server::owner_dispatch(Conn* conn, Frame&& f) {
    if (!conn->hello_done) {
        if (f.type != FrameType::Hello) {
            throw WireError("expected Hello as the first frame");
        }
        if (f.version != kWireVersion) {
            throw WireError("protocol version " + std::to_string(f.version) +
                            " unsupported (server speaks " +
                            std::to_string(kWireVersion) + ")");
        }
        const Registry::Entry* entry =
            f.text.empty() ? registry_.default_program() : registry_.find(f.text);
        if (entry == nullptr) {
            throw WireError("unknown program '" + f.text + "'");
        }
        if (f.fingerprint != 0 && f.fingerprint != entry->fingerprint) {
            throw WireError("program fingerprint mismatch");
        }
        conn->hello_done = true;
        conn->want_spans = f.flags != 0;
        conn->default_program = entry->name;
        Frame w;
        w.type = FrameType::Welcome;
        w.version = kWireVersion;
        w.fingerprint = entry->fingerprint;
        send_frame(conn, w);
        owner_flush(conn);
        return;
    }
    if (f.type == FrameType::Inject &&
        conn->pending_ops.load(std::memory_order_acquire) == 0) {
        // Fast path: ticket-ordered lock-free inject straight from the io
        // thread. Only valid while no earlier frame from this connection
        // still waits on the control thread (order preservation).
        reactor::InstanceId member = 0;
        Frame reply;
        reply.type = FrameType::InjectReply;
        reply.session = f.session;
        if (!sessions_.lookup(f.session, member)) {
            reply.verdict = static_cast<uint8_t>(reactor::Verdict::Retired);
        } else {
            reactor::InjectResult r =
                reactor_.inject(member, f.text, rt::Value::integer(f.value));
            reply.verdict = static_cast<uint8_t>(r.status);
            reply.ticket = r.ticket;
        }
        counters_.injects.fetch_add(1, std::memory_order_relaxed);
        send_frame(conn, reply);
        owner_flush(conn);
        kick_control();  // there is work to round-schedule now
        return;
    }
    conn->pending_ops.fetch_add(1, std::memory_order_acq_rel);
    queue_op({Op::Kind::Frame, conn, std::move(f)});
}

// -- io threads ---------------------------------------------------------------

void Server::io_main(size_t idx) {
    IoThread& io = *io_[idx];
    epoll_event events[64];
    while (!io_stop_.load(std::memory_order_acquire)) {
        int n = ::epoll_wait(io.epfd, events, 64, 200);
        {
            std::lock_guard<std::mutex> lock(io.staging_mu);
            for (Conn* c : io.staging) {
                io.conns.push_back(c);
                epoll_event ev{};
                ev.events = EPOLLIN;
                ev.data.ptr = c;
                ::epoll_ctl(io.epfd, EPOLL_CTL_ADD, c->fd, &ev);
            }
            io.staging.clear();
        }
        bool kicked = false;
        for (int i = 0; i < n; ++i) {
            auto* conn = static_cast<Conn*>(events[i].data.ptr);
            if (conn == nullptr) {
                eventfd_drain(io.kickfd);
                kicked = true;
                continue;
            }
            if (conn->dead) continue;
            if ((events[i].events & EPOLLOUT) != 0) owner_flush(conn);
            if ((events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
                owner_read(conn);
            }
        }
        if (kicked) {
            // Control filled outboxes (round outputs, replies) — flush all.
            io.conns.erase(
                std::remove_if(io.conns.begin(), io.conns.end(),
                               [](Conn* c) { return c->dead.load(); }),
                io.conns.end());
            for (Conn* c : io.conns) owner_flush(c);
        }
    }
    // epfd/kickfd are closed by control *after* the join: the shutdown
    // sequence kicks every io thread once more after setting io_stop_, and
    // that write must never land on a closed (worse: recycled) fd.
}

// -- control thread -----------------------------------------------------------

void Server::control_main() {
    epoll_event events[64];
    while (true) {
        bool pending = reactor_.work_pending();
        int timeout = pending ? 0 : 200;
        int n = ::epoll_wait(control_epfd_, events, 64, timeout);
        for (int i = 0; i < n; ++i) {
            if (events[i].data.u64 == kDataListen) {
                accept_ready();
                continue;
            }
            if (events[i].data.u64 == kDataKick) {
                eventfd_drain(control_kick_);
                continue;
            }
            auto* conn = static_cast<Conn*>(events[i].data.ptr);
            if (conn->dead) continue;
            if ((events[i].events & EPOLLOUT) != 0) owner_flush(conn);
            if ((events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
                owner_read(conn);
            }
        }
        process_ops();
        if (stop_requested_.load(std::memory_order_acquire)) break;
        if (reactor_.work_pending()) {
            reactor_.run_round();  // on_round_end harvests into outboxes
            // Wake owners so freshly harvested output actually hits sockets.
            for (size_t i = 0; i < io_.size(); ++i) kick_io(i);
            for (auto& [fd, conn] : conns_) {
                if (conn->io_idx == SIZE_MAX && !conn->dead) owner_flush(conn.get());
            }
        }
    }

    // -- graceful drain --------------------------------------------------------
    Frame bye;
    bye.type = FrameType::Shutdown;
    bye.text = "server draining";
    for (auto& [fd, conn] : conns_) {
        if (!conn->dead) send_frame(conn.get(), bye);
    }
    drain_to_disk();
    // Final flush, then tear everything down.
    for (size_t i = 0; i < io_.size(); ++i) kick_io(i);
    for (auto& [fd, conn] : conns_) {
        if (conn->io_idx == SIZE_MAX && !conn->dead) owner_flush(conn.get());
    }
    io_stop_.store(true, std::memory_order_release);
    for (size_t i = 0; i < io_.size(); ++i) kick_io(i);
    for (auto& io : io_) {
        if (io->th.joinable()) io->th.join();
        ::close(io->epfd);
        ::close(io->kickfd);
    }
    for (auto& [fd, conn] : conns_) ::close(fd);
    conns_.clear();
    dead_conns_.clear();
    state_.store(State::Stopped, std::memory_order_release);
}

void Server::accept_ready() {
    for (;;) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) return;
        set_nonblocking(fd);
        int yes = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof yes);
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        counters_.connections.fetch_add(1, std::memory_order_relaxed);
        Conn* raw = conn.get();
        if (!io_.empty()) {
            size_t idx = static_cast<size_t>(fd) % io_.size();
            raw->io_idx = idx;
            {
                std::lock_guard<std::mutex> lock(io_[idx]->staging_mu);
                io_[idx]->staging.push_back(raw);
            }
            kick_io(idx);
        } else {
            epoll_event ev{};
            ev.events = EPOLLIN;
            ev.data.ptr = raw;
            ::epoll_ctl(control_epfd_, EPOLL_CTL_ADD, fd, &ev);
        }
        conns_.emplace(fd, std::move(conn));
    }
}

void Server::process_ops() {
    std::vector<Op> batch;
    {
        std::lock_guard<std::mutex> lock(ops_mu_);
        batch.swap(ops_);
    }
    for (Op& op : batch) {
        if (op.kind == Op::Kind::ConnDead) {
            drop_conn(op.conn);
            continue;
        }
        handle_frame_op(op.conn, op.frame);
        op.conn->pending_ops.fetch_sub(1, std::memory_order_acq_rel);
    }
}

void Server::handle_frame_op(Conn* conn, const Frame& f) {
    switch (f.type) {
        case FrameType::Open:
            handle_open(conn, f);
            break;
        case FrameType::Inject: {
            // Queued because a control op was in flight ahead of it.
            reactor::InstanceId member = 0;
            Frame reply;
            reply.type = FrameType::InjectReply;
            reply.session = f.session;
            if (!sessions_.lookup(f.session, member)) {
                reply.verdict = static_cast<uint8_t>(reactor::Verdict::Retired);
            } else {
                reactor::InjectResult r =
                    reactor_.inject(member, f.text, rt::Value::integer(f.value));
                reply.verdict = static_cast<uint8_t>(r.status);
                reply.ticket = r.ticket;
            }
            counters_.injects.fetch_add(1, std::memory_order_relaxed);
            send_frame(conn, reply);
            break;
        }
        case FrameType::Advance: {
            // Deliver what is already queued at the *current* instant first:
            // "inject then advance" must not teleport the inject into the
            // new instant (script semantics).
            quiesce();
            reactor_.advance(f.value);
            Frame reply;
            reply.type = FrameType::Advanced;
            reply.value = reactor_.now();
            send_frame(conn, reply);
            break;
        }
        case FrameType::Detach:
            handle_detach(conn, f);
            break;
        case FrameType::Resume:
            handle_resume(conn, f);
            break;
        case FrameType::Close:
            handle_close_session(conn, f);
            break;
        case FrameType::Ping: {
            quiesce();
            harvest_sessions();
            Frame reply;
            reply.type = FrameType::Pong;
            reply.ticket = f.ticket;
            send_frame(conn, reply);
            break;
        }
        case FrameType::Bye:
            conn->closing = true;
            break;
        default:
            send_error(conn, std::string("unexpected frame ") +
                                 frame_type_name(f.type));
            break;
    }
    // Whatever the op produced, get it moving.
    if (conn->io_idx == SIZE_MAX) {
        if (!conn->dead || conn->closing) owner_flush(conn);
    } else {
        kick_io(conn->io_idx);
    }
}

SessionState* Server::create_session(Conn* conn, const Registry::Entry& entry,
                                     const std::vector<uint8_t>* blob,
                                     SessionId want_id, std::string* err) {
    host::Config hcfg;
    if (entry.backend == Backend::Aot) hcfg.aot = entry.aot;
    reactor::InstanceId member = reactor_.add_instance(entry.cp, hcfg);

    auto st = std::make_unique<SessionState>();
    st->member = member;
    st->conn_fd = conn != nullptr ? conn->fd : -1;
    st->program = entry.name;
    st->backend = entry.backend;
    st->want_spans = conn != nullptr && conn->want_spans;
    SessionState* raw = st.get();

    host::Instance& inst = reactor_.instance(member);
    if (blob != nullptr) {
        // Resume path: boot *before* wiring sinks, so the phantom boot
        // reaction (whose state the blob overwrites) streams nothing.
        reactor_.boot();
        try {
            inst.load(*blob);
        } catch (const std::exception& e) {
            reactor_.retire(member);
            if (err != nullptr) *err = e.what();
            return nullptr;
        }
        // A snapshot from the future pulls the fleet clock forward: time is
        // virtual and monotonic, and the restored engine's timers are due
        // relative to its own instant. Without this, a session migrated in
        // from a server at t=T would never see its timers fire until the
        // destination fleet happened to pass T.
        if (inst.now() > reactor_.now()) {
            reactor_.advance(inst.now() - reactor_.now());
        }
    }
    inst.add_output_sink(
        [raw](const std::string& line) { raw->pending_out.push_back(line); });
    inst.add_status_sink([raw](rt::Engine::Status s) {
        raw->pending_status.push_back(static_cast<uint8_t>(s));
    });
    if (raw->want_spans) {
        inst.add_span_sink([raw](const obs::ReactionSpan& span) {
            raw->pending_spans.push_back({static_cast<uint8_t>(span.kind),
                                          span.seq, span.ts,
                                          static_cast<uint32_t>(span.wakes()),
                                          static_cast<uint32_t>(span.emits())});
        });
    }
    if (blob == nullptr) reactor_.boot();  // boot streams through the sinks

    SessionId id;
    if (want_id != 0) {
        if (!sessions_.open_with_id(want_id, std::move(st))) {
            reactor_.retire(member);
            if (err != nullptr) *err = "session id already live";
            return nullptr;
        }
        id = want_id;
    } else {
        id = sessions_.open(std::move(st));
    }
    raw->id = id;
    if (conn != nullptr) conn->sessions.push_back(id);
    return raw;
}

void Server::handle_open(Conn* conn, const Frame& f) {
    const Registry::Entry* entry = f.text.empty()
                                       ? registry_.find(conn->default_program)
                                       : registry_.find(f.text);
    if (entry == nullptr) {
        send_error(conn, "unknown program '" + f.text + "'");
        return;
    }
    std::string err;
    SessionState* st = create_session(conn, *entry, nullptr, 0, &err);
    if (st == nullptr) {
        send_error(conn, "open failed: " + err);
        return;
    }
    counters_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
    Frame reply;
    reply.type = FrameType::SessionOpened;
    reply.session = st->id;
    send_frame(conn, reply);
}

void Server::handle_resume(Conn* conn, const Frame& f) {
    // Resolution order: live orphaned session (reattach) -> client-carried
    // blob -> drained-to-disk snapshot from a previous server life.
    if (f.blob.empty() && f.session != 0) {
        if (SessionState* live = sessions_.get(f.session)) {
            live->conn_fd = conn->fd;
            if (conn->want_spans && !live->want_spans) {
                live->want_spans = true;
                SessionState* raw = live;
                reactor_.instance(live->member)
                    .add_span_sink([raw](const obs::ReactionSpan& span) {
                        raw->pending_spans.push_back(
                            {static_cast<uint8_t>(span.kind), span.seq, span.ts,
                             static_cast<uint32_t>(span.wakes()),
                             static_cast<uint32_t>(span.emits())});
                    });
            }
            conn->sessions.push_back(f.session);
            counters_.sessions_resumed.fetch_add(1, std::memory_order_relaxed);
            Frame reply;
            reply.type = FrameType::SessionOpened;
            reply.session = f.session;
            send_frame(conn, reply);
            return;
        }
    }

    const std::vector<uint8_t>* blob = nullptr;
    std::vector<uint8_t> file_blob;
    const Registry::Entry* entry = nullptr;
    if (!f.blob.empty()) {
        entry = f.text.empty() ? registry_.find(conn->default_program)
                               : registry_.find(f.text);
        blob = &f.blob;
    } else {
        auto it = drained_.find(f.session);
        if (it == drained_.end()) {
            send_error(conn, "nothing to resume for session " +
                                 std::to_string(f.session));
            return;
        }
        std::ifstream in(it->second.path, std::ios::binary);
        if (!in) {
            send_error(conn, "drained snapshot unreadable: " + it->second.path);
            return;
        }
        file_blob.assign(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
        entry = registry_.find(it->second.program);
        blob = &file_blob;
    }
    if (entry == nullptr) {
        send_error(conn, "unknown program for resume");
        return;
    }
    std::string err;
    SessionState* st = create_session(conn, *entry, blob, f.session, &err);
    if (st == nullptr) {
        send_error(conn, "resume failed: " + err);
        return;
    }
    drained_.erase(st->id);
    counters_.sessions_resumed.fetch_add(1, std::memory_order_relaxed);
    Frame reply;
    reply.type = FrameType::SessionOpened;
    reply.session = st->id;
    send_frame(conn, reply);
}

void Server::handle_detach(Conn* conn, const Frame& f) {
    SessionState* st = sessions_.get(f.session);
    if (st == nullptr) {
        send_error(conn, "unknown session " + std::to_string(f.session));
        return;
    }
    if (st->backend == Backend::Aot) {
        // CEUAOT01 context images are same-process-only; shipping one to a
        // client that may resume elsewhere would be a lie.
        send_error(conn, "session " + std::to_string(f.session) +
                             " is AOT-backed; compiled snapshots cannot "
                             "migrate across processes");
        return;
    }
    quiesce();  // checkpoint at a quiescent reaction boundary
    Frame reply;
    reply.type = FrameType::Detached;
    reply.session = f.session;
    reply.blob = reactor_.instance(st->member).save();
    reactor_.retire(st->member);
    std::unique_ptr<SessionState> owned = sessions_.close(f.session);
    if (owned != nullptr) harvest_one(owned.get());  // last outputs first
    send_frame(conn, reply);
}

void Server::handle_close_session(Conn* conn, const Frame& f) {
    std::unique_ptr<SessionState> st = sessions_.close(f.session);
    if (st == nullptr) {
        send_error(conn, "unknown session " + std::to_string(f.session));
        return;
    }
    reactor_.retire(st->member);
    harvest_one(st.get());
    Frame reply;
    reply.type = FrameType::SessionClosed;
    reply.session = f.session;
    send_frame(conn, reply);
}

void Server::quiesce() {
    size_t rounds = 0;
    while (reactor_.work_pending() && rounds < cfg_.drain_round_cap) {
        reactor_.run_round();
        ++rounds;
    }
}

void Server::harvest_sessions() {
    for (SessionId id : sessions_.ids()) {
        SessionState* st = sessions_.get(id);
        if (st != nullptr) harvest_one(st);
    }
}

void Server::harvest_one(SessionState* st) {
    if (st->pending_out.empty() && st->pending_spans.empty() &&
        st->pending_status.empty()) {
        return;
    }
    // Orphaned sessions keep buffering: a reconnecting client that Resumes
    // the session receives everything it missed, in order.
    auto it = conns_.find(st->conn_fd);
    if (st->conn_fd < 0 || it == conns_.end() || it->second->dead) return;
    Conn* conn = it->second.get();
    for (std::string& line : st->pending_out) {
        Frame f;
        f.type = FrameType::Output;
        f.session = st->id;
        f.text = std::move(line);
        send_frame(conn, f);
    }
    st->pending_out.clear();
    for (const SpanDigest& d : st->pending_spans) {
        Frame f;
        f.type = FrameType::Span;
        f.session = st->id;
        f.verdict = d.kind;
        f.ticket = d.seq;
        f.value = d.ts;
        f.a = d.wakes;
        f.b = d.emits;
        send_frame(conn, f);
    }
    st->pending_spans.clear();
    for (uint8_t s : st->pending_status) {
        Frame f;
        f.type = FrameType::SessionStatus;
        f.session = st->id;
        f.flags = s;
        send_frame(conn, f);
    }
    st->pending_status.clear();
}

void Server::drop_conn(Conn* conn) {
    // Sessions survive their connection: the kill/reconnect storm resumes
    // them via the live-reattach path. They are only lost on Close/Detach
    // or server drain.
    for (SessionId id : conn->sessions) {
        if (SessionState* st = sessions_.get(id)) {
            if (st->conn_fd == conn->fd) st->conn_fd = -1;
        }
    }
    int fd = conn->fd;
    auto it = conns_.find(fd);
    if (it != conns_.end() && it->second.get() == conn) {
        ::close(fd);
        conn->fd = -1;
        // The owning io thread may still hold the pointer in its conn list
        // until its next wakeup prunes it — park the object in a graveyard
        // instead of freeing it out from under that thread. Shrink the
        // buffers now; the husk itself is tiny.
        conn->outbox = {};
        conn->reader = {};
        dead_conns_.push_back(std::move(it->second));
        conns_.erase(it);
    }
}

// -- drain / resume -----------------------------------------------------------

void Server::drain_to_disk() {
    std::vector<reactor::Reactor::DrainedMember> members =
        reactor_.drain_and_checkpoint(cfg_.drain_round_cap);
    harvest_sessions();
    if (cfg_.drain_dir.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(cfg_.drain_dir, ec);

    // member id -> session (sessions are what the manifest speaks).
    std::map<reactor::InstanceId, const reactor::Reactor::DrainedMember*> by_member;
    for (const auto& m : members) by_member[m.id] = &m;

    std::ofstream manifest(cfg_.drain_dir + "/MANIFEST");
    manifest << kManifestMagic << "\n";
    manifest << "fleet_now " << reactor_.now() << "\n";
    manifest << "next_session " << sessions_.next_id() << "\n";
    for (SessionId id : sessions_.ids()) {
        SessionState* st = sessions_.get(id);
        if (st == nullptr) continue;
        auto mit = by_member.find(st->member);
        if (mit == by_member.end()) continue;  // terminated: nothing to resume
        if (st->backend == Backend::Aot) {
            manifest << "skipped " << id << " " << st->program
                     << " aot-same-process-only\n";
            continue;
        }
        std::string path = cfg_.drain_dir + "/" + std::to_string(id) + ".snap";
        std::ofstream snap(path, std::ios::binary);
        snap.write(reinterpret_cast<const char*>(mit->second->snapshot.data()),
                   static_cast<std::streamsize>(mit->second->snapshot.size()));
        manifest << "session " << id << " " << st->program << "\n";
        counters_.drained.fetch_add(1, std::memory_order_relaxed);
    }
}

void Server::load_resume_manifest() {
    std::ifstream in(cfg_.resume_dir + "/MANIFEST");
    if (!in) return;  // nothing drained: fresh start
    std::string line;
    if (!std::getline(in, line) || line != kManifestMagic) {
        throw std::runtime_error("serve: bad drain manifest in " + cfg_.resume_dir);
    }
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "fleet_now") {
            ls >> resumed_fleet_now_;
        } else if (key == "next_session") {
            SessionId next = 0;
            ls >> next;
            if (next > 0) sessions_.reserve_ids_through(next - 1);
        } else if (key == "session") {
            SessionId id = 0;
            std::string program;
            ls >> id >> program;
            drained_[id] = {program,
                            cfg_.resume_dir + "/" + std::to_string(id) + ".snap"};
        }
    }
    // Restore the fleet instant before any member exists: resumed sessions
    // sync to it lazily, exactly like crash-restored supervision members.
    if (resumed_fleet_now_ > 0) reactor_.advance(resumed_fleet_now_);
}

}  // namespace ceu::serve
