// CEUWIRE1 — the reactor service's versioned wire protocol.
//
// The runtime's event/timer/session surface, which every in-process host
// reaches through `host::Instance`, becomes a *stable network API* here:
// length-prefixed binary frames over TCP, little-endian, with an explicit
// version handshake carrying the protocol revision and the program
// fingerprint, so a client knows — before injecting anything — that it is
// talking to the protocol it speaks and the program it recorded against.
//
// Framing: every frame is `u32 length` (little-endian, counting the payload
// only) followed by `length` payload bytes. The payload is `u8 type` plus
// the type's fields, encoded with the same explicit-byte discipline as the
// snapshot format (runtime/snapshot.hpp): no structs are ever memcpy'd, so
// any build talks to any other. Length is capped (kMaxPayload) and decoders
// bounds-check every field; a truncated, trailing-garbage, oversized or
// unknown-type payload raises WireError — a malformed frame must kill the
// connection loudly, never deserialize into a subtly wrong op.
//
// Frame vocabulary (client → server):
//   Hello    magic[8] u32 version u8 want_spans str program u64 expect_fp
//            First frame on a connection. `program` names the registry
//            entry sessions on this connection default to (empty = server
//            default). `expect_fp` 0 skips the fingerprint check.
//   Open     str program — create-on-connect: registers a fresh session
//            (reactor member) and boots it. Empty = connection default.
//   Inject   u64 session str event i64 value — one occurrence, fed to the
//            ticket-ordered Reactor::inject() path. Always answered by
//            InjectReply carrying the shared reactor::Verdict.
//   Advance  i64 delta_us — advances the *fleet* clock (time is virtual
//            and client-driven: determinism over wall-clock coupling).
//   Detach   u64 session — drain, checkpoint (CEUHST01), retire; the blob
//            comes back in Detached and the session id is released. The
//            client owns migration: hand the blob to Resume here or on a
//            different server.
//   Resume   u64 session str program blob — revive a session from a
//            Detached blob (blob non-empty) or from the server's drain
//            directory (blob empty, `session` = the pre-drain id, which is
//            preserved so traces line up byte-identical-thereafter).
//   Close    u64 session — retire without checkpoint.
//   Ping     u64 nonce — barrier: Pong is sent only after every previously
//            accepted inject has reacted and its outputs were flushed.
//   Bye      graceful connection close (sessions stay live until Close/
//            Detach or connection teardown policy says otherwise).
//
// Server → client:
//   Welcome        magic[8] u32 version u64 fingerprint — handshake accept.
//   SessionOpened  u64 session
//   InjectReply    u64 session u8 verdict u64 ticket — verdict is the
//                  reactor::Verdict numeric value, unchanged.
//   Advanced      i64 fleet_now_us
//   Detached      u64 session blob
//   Output        u64 session str line — one program output/trace line.
//   Span          u64 session u8 kind u64 seq i64 ts u32 wakes u32 emits —
//                 compact reaction-span digest (opt-in via Hello).
//   SessionStatus u64 session u8 status — rt::Engine::Status transitions.
//   SessionClosed u64 session
//   Pong          u64 nonce
//   Error         str message — request-level failure; connection survives
//                 unless the error was a framing violation.
//   Shutdown      str reason — server is draining; no new work accepted.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ceu::serve {

/// Protocol magic, first bytes of Hello and Welcome.
inline constexpr char kWireMagic[8] = {'C', 'E', 'U', 'W', 'I', 'R', 'E', '1'};
/// Current protocol revision. Hello carrying a different version is
/// rejected at handshake (Error + close) — no silent downgrade.
inline constexpr uint32_t kWireVersion = 1;
/// Hard payload cap: one frame never exceeds this (largest legitimate
/// payload is a Detached/Resume snapshot blob).
inline constexpr uint32_t kMaxPayload = 16u << 20;

class WireError : public std::runtime_error {
  public:
    explicit WireError(const std::string& msg)
        : std::runtime_error("wire: " + msg) {}
};

enum class FrameType : uint8_t {
    // client → server
    Hello = 1,
    Open = 2,
    Inject = 3,
    Advance = 4,
    Detach = 5,
    Resume = 6,
    Close = 7,
    Bye = 8,
    Ping = 9,
    // server → client
    Welcome = 65,
    SessionOpened = 66,
    InjectReply = 67,
    Advanced = 68,
    Detached = 69,
    Output = 70,
    Span = 71,
    Error = 72,
    Shutdown = 73,
    SessionClosed = 74,
    Pong = 75,
    SessionStatus = 76,
};

[[nodiscard]] const char* frame_type_name(FrameType t);

/// One decoded frame: the union of every type's fields, with only the
/// fields the type defines encoded on the wire (see the table above). The
/// codec round-trips exactly the defined fields; everything else stays at
/// its default.
struct Frame {
    FrameType type = FrameType::Hello;

    uint32_t version = 0;     ///< Hello/Welcome: protocol revision
    uint8_t flags = 0;        ///< Hello: want_spans; SessionStatus: status
    uint8_t verdict = 0;      ///< InjectReply: reactor::Verdict; Span: kind
    uint64_t session = 0;     ///< every session-scoped frame
    uint64_t ticket = 0;      ///< InjectReply ticket; Ping/Pong nonce; Span seq
    uint64_t fingerprint = 0; ///< Hello expected / Welcome actual
    int64_t value = 0;        ///< Inject value; Advance delta; Advanced now; Span ts
    uint32_t a = 0;           ///< Span: wakes
    uint32_t b = 0;           ///< Span: emits
    std::string text;         ///< program / event / output line / error / reason
    std::vector<uint8_t> blob;///< Detached / Resume snapshot
};

/// Appends the length prefix + encoded payload of `f` to `out`.
void encode_frame(const Frame& f, std::vector<uint8_t>& out);

/// Decodes one payload (the bytes *after* the length prefix). Throws
/// WireError on unknown type, truncation, oversize fields or trailing
/// bytes.
[[nodiscard]] Frame decode_frame(const uint8_t* payload, size_t n);

/// Incremental deframer: feed() raw socket bytes, next() yields complete
/// frames in order. Throws WireError as soon as a length prefix exceeds
/// kMaxPayload (don't buffer a hostile length) or a payload fails to
/// decode.
class FrameReader {
  public:
    void feed(const uint8_t* data, size_t n);
    /// True and fills `out` if a complete frame was available.
    [[nodiscard]] bool next(Frame& out);
    /// Bytes currently buffered (tests).
    [[nodiscard]] size_t buffered() const { return buf_.size() - pos_; }

  private:
    std::vector<uint8_t> buf_;
    size_t pos_ = 0;  // consumed prefix; compacted opportunistically
};

}  // namespace ceu::serve
