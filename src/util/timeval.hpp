// Wall-clock durations. Céu treats time as a physical quantity that can be
// added and compared (paper §2.3); internally everything is microseconds.
#pragma once

#include <cstdint>
#include <string>

namespace ceu {

/// Microseconds since program boot (or a duration). Signed so that residual
/// delta arithmetic (`now - deadline`) is natural.
using Micros = int64_t;

constexpr Micros kUs = 1;
constexpr Micros kMs = 1000 * kUs;
constexpr Micros kSec = 1000 * kMs;
constexpr Micros kMin = 60 * kSec;
constexpr Micros kHour = 60 * kMin;

/// Renders a duration the way Céu source spells it, e.g. "1h35min" or
/// "500ms". Used by diagnostics, DFA dumps and traces.
std::string format_micros(Micros us);

/// Parses a concatenated time literal body such as "1h35min" / "500ms".
/// Returns false if `text` is not a valid TIME literal.
bool parse_time_literal(const std::string& text, Micros* out);

}  // namespace ceu
