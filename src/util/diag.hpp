// Diagnostics engine: every phase reports errors/warnings here instead of
// throwing ad-hoc exceptions, so callers (tests, the CLI driver, benches)
// can inspect structured results.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "util/source.hpp"

namespace ceu {

enum class Severity { Note, Warning, Error };

/// "note" / "warning" / "error" — the spelling used in diagnostic output
/// (shared by Diagnostic::str and the analysis Finding printers).
const char* severity_name(Severity s);

struct Diagnostic {
    Severity severity = Severity::Error;
    SourceLoc loc;
    std::string message;

    [[nodiscard]] std::string str() const;
};

/// Collects diagnostics across phases. A phase that encounters a hard error
/// records it and returns; `ok()` gates progression to the next phase.
class Diagnostics {
  public:
    void error(SourceLoc loc, std::string msg);
    void warning(SourceLoc loc, std::string msg);
    void note(SourceLoc loc, std::string msg);

    [[nodiscard]] bool ok() const { return error_count_ == 0; }
    [[nodiscard]] size_t error_count() const { return error_count_; }
    [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }

    /// True if any diagnostic message contains `needle` (handy in tests).
    [[nodiscard]] bool contains(std::string_view needle) const;

    /// All diagnostics joined with newlines.
    [[nodiscard]] std::string str() const;

    void clear();

  private:
    std::vector<Diagnostic> diags_;
    size_t error_count_ = 0;
};

/// Thrown by convenience entry points that promise a fully-checked program.
class CompileError : public std::runtime_error {
  public:
    explicit CompileError(std::string what) : std::runtime_error(std::move(what)) {}
};

}  // namespace ceu
