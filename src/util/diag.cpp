#include "util/diag.hpp"

#include <sstream>

namespace ceu {

const char* severity_name(Severity s) {
    switch (s) {
        case Severity::Note: return "note";
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "?";
}

std::string Diagnostic::str() const {
    std::ostringstream os;
    if (loc.valid()) os << loc.str() << ": ";
    os << severity_name(severity) << ": " << message;
    return os.str();
}

void Diagnostics::error(SourceLoc loc, std::string msg) {
    diags_.push_back({Severity::Error, loc, std::move(msg)});
    ++error_count_;
}

void Diagnostics::warning(SourceLoc loc, std::string msg) {
    diags_.push_back({Severity::Warning, loc, std::move(msg)});
}

void Diagnostics::note(SourceLoc loc, std::string msg) {
    diags_.push_back({Severity::Note, loc, std::move(msg)});
}

bool Diagnostics::contains(std::string_view needle) const {
    for (const auto& d : diags_) {
        if (d.message.find(needle) != std::string::npos) return true;
    }
    return false;
}

std::string Diagnostics::str() const {
    std::ostringstream os;
    for (const auto& d : diags_) os << d.str() << "\n";
    return os.str();
}

void Diagnostics::clear() {
    diags_.clear();
    error_count_ = 0;
}

}  // namespace ceu
