// Source locations and source buffers shared by every compiler phase.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ceu {

/// A position inside a source buffer (1-based line/column, as editors count).
struct SourceLoc {
    uint32_t line = 0;
    uint32_t col = 0;

    [[nodiscard]] bool valid() const { return line != 0; }
    [[nodiscard]] std::string str() const {
        return std::to_string(line) + ":" + std::to_string(col);
    }
    friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// An immutable source buffer. Owns the text so that string_views handed out
/// by the lexer stay valid for the lifetime of the compilation.
class SourceFile {
  public:
    SourceFile(std::string name, std::string text)
        : name_(std::move(name)), text_(std::move(text)) {}

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::string_view text() const { return text_; }

  private:
    std::string name_;
    std::string text_;
};

}  // namespace ceu
