#include "util/timeval.hpp"

#include <cctype>
#include <sstream>

namespace ceu {

std::string format_micros(Micros us) {
    if (us == 0) return "0us";
    std::ostringstream os;
    if (us < 0) {
        os << "-";
        us = -us;
    }
    struct Unit {
        Micros size;
        const char* name;
    };
    static constexpr Unit kUnits[] = {
        {kHour, "h"}, {kMin, "min"}, {kSec, "s"}, {kMs, "ms"}, {kUs, "us"},
    };
    for (const auto& u : kUnits) {
        if (us >= u.size) {
            os << (us / u.size) << u.name;
            us %= u.size;
        }
    }
    return os.str();
}

bool parse_time_literal(const std::string& text, Micros* out) {
    // Grammar: (NUM h)? (NUM min)? (NUM s)? (NUM ms)? (NUM us)?  -- at least
    // one; we accept the units in any order but each at most once, which is
    // a superset of the paper's grammar and matches its examples.
    Micros total = 0;
    size_t i = 0;
    bool any = false;
    while (i < text.size()) {
        if (!std::isdigit(static_cast<unsigned char>(text[i]))) return false;
        Micros num = 0;
        while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
            num = num * 10 + (text[i] - '0');
            ++i;
        }
        size_t start = i;
        while (i < text.size() && std::isalpha(static_cast<unsigned char>(text[i]))) ++i;
        std::string unit = text.substr(start, i - start);
        // "min" must be checked before "m"-like prefixes; we only accept the
        // exact unit names from the grammar.
        Micros scale = 0;
        if (unit == "h") scale = kHour;
        else if (unit == "min") scale = kMin;
        else if (unit == "s") scale = kSec;
        else if (unit == "ms") scale = kMs;
        else if (unit == "us") scale = kUs;
        else return false;
        total += num * scale;
        any = true;
    }
    if (!any) return false;
    *out = total;
    return true;
}

}  // namespace ceu
