#include "demos/demos.hpp"

#include <string>

namespace ceu::demos {

// ---------------------------------------------------------------------------
// §2 programs
// ---------------------------------------------------------------------------

const char* const kQuickstart = R"(
    input int Restart;     // an external event
    internal void changed; // an internal event
    int v = 0;             // a variable
    par do
       loop do             // 1st trail
          await 1s;
          v = v + 1;
          emit changed;
       end
    with
       loop do             // 2nd trail
          v = await Restart;
          emit changed;
       end
    with
       loop do             // 3rd trail
          await changed;
          _printf("v = %d\n", v);
       end
    end
)";

const char* const kTemperature = R"(
    input int SetCelsius, SetFahrenheit;
    int tc, tf;
    internal void tc_evt, tf_evt;
    par do
       loop do             // tc -> tf
          await tc_evt;
          tf = 9 * tc / 5 + 32;
          emit tf_evt;
       end
    with
       loop do             // tf -> tc
          await tf_evt;
          tc = 5 * (tf - 32) / 9;
          emit tc_evt;
       end
    with
       loop do
          tc = await SetCelsius;
          emit tc_evt;
          _printf("set tc: tc=%d tf=%d\n", tc, tf);
       end
    with
       loop do
          tf = await SetFahrenheit;
          emit tf_evt;
          _printf("set tf: tc=%d tf=%d\n", tc, tf);
       end
    end
)";

// ---------------------------------------------------------------------------
// §3.1: the ring
// ---------------------------------------------------------------------------

const char* const kRing = R"(
    input int Radio_receive;
    internal void retry;
    // The strict temporal analysis finds real races the paper's listing is
    // silent about: when the 5s watchdog fires, the blinking trail runs
    // concurrently with the retry chain (emit retry -> initiating trail's
    // send), and the 500ms blink coincides with the 10s retry period every
    // 20 blinks. The led and radio operations commute, so we declare them:
    deterministic _Leds_set, _Leds_led0Toggle, _Radio_send, _Radio_getPayload;
    par do
       // COMMUNICATING TRAIL: receive, show, wait 1s, increment, forward.
       loop do
          _message_t* msg = await Radio_receive;
          int* cnt = _Radio_getPayload(msg);
          _Leds_set(*cnt);
          await 1s;
          *cnt = *cnt + 1;
          _Radio_send((_TOS_NODE_ID + 1) % 3, msg);
       end
    with
       // MONITORING TRAIL: after 5s of silence, blink the red led every
       // 500ms and ask for retries every 10s, until the link is back.
       loop do
          par/or do
             await 5s;
             par do
                loop do
                   emit retry;
                   await 10s;
                end
             with
                _Leds_set(0);
                loop do
                   _Leds_led0Toggle();
                   await 500ms;
                end
             end
          with
             await Radio_receive;
          end
       end
    with
       // INITIATING TRAIL: mote 0 starts the ring and re-starts on retry.
       if _TOS_NODE_ID == 0 then
          loop do
             _message_t msg;
             int* cnt = _Radio_getPayload(&msg);
             *cnt = 1;
             _Radio_send(1, &msg);
             await retry;
          end
       else
          await forever;
       end
    end
)";

const char* const kMultihop = R"(
    input int Radio_receive;
    // Sampling (2s) and the heartbeat (5s) coincide every 10s; the touched
    // devices commute:
    deterministic _Radio_send, _Radio_getPayload, _Read_sensor, _Leds_set;

    par do
       if _TOS_NODE_ID == 0 then
          // SINK: collect readings (payload: origin, value, hops).
          loop do
             _message_t* msg = await Radio_receive;
             int* d = _Radio_getPayload(msg);
             _collect(d[0], d[1], d[2]);
          end
       else
          par do
             // SOURCE: sample every 2s and send one hop toward the sink.
             loop do
                await 2s;
                _message_t msg;
                int* d = _Radio_getPayload(&msg);
                d[0] = _TOS_NODE_ID;
                d[1] = _Read_sensor();
                d[2] = 0;
                _Radio_send(_TOS_NODE_ID - 1, &msg);
             end
          with
             // ROUTER: forward traffic from farther motes, counting hops.
             loop do
                _message_t* msg = await Radio_receive;
                int* d = _Radio_getPayload(msg);
                d[2] = d[2] + 1;
                _Radio_send(_TOS_NODE_ID - 1, msg);
             end
          end
       end
    with
       // Heartbeat on the leds (all motes).
       loop do
          await 5s;
          _Leds_set(_TOS_NODE_ID);
       end
    end
)";

// ---------------------------------------------------------------------------
// §3.2: the ship game
// ---------------------------------------------------------------------------

const char* const kShip = R"(
    input int Key;
    pure _analog2key;   // just a mapping function
    deterministic _analogRead, _map_generate;
    deterministic _analogRead, _redraw;
    // Our temporal analysis also proves the 100ms game-over animation can
    // coincide with the 50ms keypad sampler (lcm of the periods), so the
    // LCD calls need the same treatment — a pair the paper's annotation
    // list omits:
    deterministic _analogRead, _lcd.setCursor;
    deterministic _analogRead, _lcd.write;

    int win = 0;
    int ship, dt, step, points;
    par do
       loop do
          // CODE 1: set game attributes
          ship = 0;
          if !win then
             dt     = 500;   // game speed (500ms/step)
             step   = 0;     // current step
             points = 0;     // number of steps alive
          else
             step = 0;
             if dt > 100 then
                dt = dt - 50;
             end
          end

          _map_generate();
          _redraw(step, ship, points);
          await Key;  // starting key

          // CODE 2: the central loop
          win = par do
             loop do
                await (dt * 1000);
                step = step + 1;
                _redraw(step, ship, points);
                if _MAP[ship][step] == '#' then
                   return 0;  // a collision
                end
                if step == _FINISH then
                   return 1;  // finish line
                end
                points = points + 1;
             end
          with
             loop do
                int key = await Key;
                if key == _KEY_UP then
                   ship = 0;
                end
                if key == _KEY_DOWN then
                   ship = 1;
                end
             end
          end;

          // CODE 3: after game
          par/or do
             await Key;
          with
             if !win then
                loop do
                   await 100ms;
                   _lcd.setCursor(0, ship);
                   _lcd.write('<');
                   await 100ms;
                   _lcd.setCursor(0, ship);
                   _lcd.write('>');
                end
             else
                await forever;
             end
          end
       end
    with
       // EVENT GENERATOR: sample the analog keypad, debounce, emit keys.
       int key = _KEY_NONE;
       loop do
          int read1 = _analog2key(_analogRead(0));
          await 50ms;
          int read2 = _analog2key(_analogRead(0));
          if read1 == read2 && key != read1 then
             key = read1;
             if key != _KEY_NONE then
                async do
                   emit Key = read1;
                end
             end
          end
       end
    end
)";

void ShipWorld::generate() {
    state_ = seed_ * 2654435761u + 1;
    for (auto& row : map_) {
        for (char& c : row) c = ' ';
    }
    // Sparse meteors, never blocking both rows of one column, and none in
    // the first few columns so the game is survivable.
    for (int col = 4; col < kCols - 4; ++col) {
        state_ = state_ * 1103515245u + 12345u;
        uint32_t r = (state_ >> 16) % 8;
        if (r == 0) map_[0][col] = '#';
        if (r == 1) map_[1][col] = '#';
    }
}

int64_t ShipWorld::map_at(int64_t row, int64_t col) const {
    if (row < 0 || row >= kRows || col < 0 || col >= kCols) return ' ';
    return map_[row][col];
}

void ShipWorld::redraw(int64_t step, int64_t ship, int64_t points) {
    ++redraws_;
    // Window of the map starting at `step`; the ship sits in column 0.
    for (int row = 0; row < kRows; ++row) {
        lcd_.set_cursor(0, row);
        for (int col = 0; col < arduino::Lcd::kCols; ++col) {
            char c = static_cast<char>(map_at(row, step + col));
            if (col == 0) c = (row == ship) ? '>' : ' ';
            lcd_.write(c);
        }
    }
    (void)points;
    lcd_.snapshot(static_cast<Micros>(step));
}

rt::CBindings make_ship_bindings(ShipWorld& world, arduino::Lcd& lcd,
                                 arduino::Board& board) {
    rt::CBindings c = arduino::make_arduino_bindings(board, lcd);
    c.constant("FINISH", world.finish_column());
    c.fn("map_generate", [&world](rt::Engine&, std::span<const rt::Value>) {
        world.generate();
        return rt::Value::integer(0);
    });
    c.fn("redraw", [&world](rt::Engine&, std::span<const rt::Value> args) {
        world.redraw(args.size() > 0 ? args[0].as_int() : 0,
                     args.size() > 1 ? args[1].as_int() : 0,
                     args.size() > 2 ? args[2].as_int() : 0);
        return rt::Value::integer(0);
    });
    c.array("MAP", [&world](std::span<const int64_t> idx) {
        int64_t row = idx.size() > 0 ? idx[0] : 0;
        int64_t col = idx.size() > 1 ? idx[1] : 0;
        return rt::Value::integer(world.map_at(row, col));
    });
    return c;
}

// ---------------------------------------------------------------------------
// §3.3: Mario
// ---------------------------------------------------------------------------

// The unmodified game (embedded verbatim in each environment variant).
static const std::string kMarioGameStr = R"(
          int seed = await Seed;
          _srand(seed);

          int mario_x  = 10;
          int mario_dx = 1;
          int mario_y  = 236;
          int mario_dy = 0;

          int turtle_x  = 600;
          int turtle_y  = 250;
          int turtle_dx = 0;

          _redraw(mario_x, mario_y, turtle_x, turtle_y);

          par do
              loop do
                  await 50ms;
                  turtle_dx = -(_rand() % 4 - 1);
              end
          with
              loop do
                  int v =
                      par do
                          await Key;
                          return 1;
                      with
                          await collision;
                          return 0;
                      end;
                  if v == 1 then
                      mario_dy = -2;
                      await 500ms;
                      mario_dy = 2;
                      await 500ms;
                      mario_dy = 0;
                  else
                      mario_dx = -4;
                      await 300ms;
                      mario_dx = 1;
                  end
              end
          with
              loop do
                  await Step;
                  mario_x  = mario_x  + mario_dx;
                  mario_y  = mario_y  + mario_dy;
                  turtle_x = turtle_x + turtle_dx;
                  if !( mario_x + 32 < turtle_x ||
                        turtle_x + 32 < mario_x ) then
                      emit collision;
                  end
                  _redraw(mario_x, mario_y, turtle_x, turtle_y);
              end
          end
)";

static const std::string kMarioLiveStr = std::string(R"(
    input int  Seed;
    input void Key;
    input void Step;
    internal void collision;
    par do
)") + kMarioGameStr + R"(
    with
       // EVENT GENERATOR
       async do
          emit Seed = _time(0);
          int steps = 0;
          loop do
             _SDL_Event event;
             if _SDL_PollEvent(&event) then
                if event.type == _SDL_KEYDOWN then
                   emit Key;
                end
             else
                _SDL_Delay(10);
                emit 10ms;
                emit Step;
                steps = steps + 1;
                if steps == 1000 then
                   break;      // a 10s session, then the generator retires
                end
             end
          end
          return 0;
       end
       await forever;
    end
)";
const char* const kMarioLive = kMarioLiveStr.c_str();

static const std::string kMarioReplayStr = std::string(R"(
    input int  Seed;
    input void Key;
    input void Step;
    input void Restart;
    internal void collision;
    par do
       loop do
          par/or do
)") + kMarioGameStr + R"(
          with
             await Restart;
          end
       end
    with
       async do
          // RECORD: 1000 steps (10s) of play, remembering each key's step.
          int step = 0;
          int seed = _time(0);
          emit Seed = seed;

          int[64] keys;
          keys[0] = -1;
          int idx = 0;

          loop do
             _SDL_Event event;
             if _SDL_PollEvent(&event) then
                if event.type == _SDL_KEYDOWN then
                   keys[idx] = step;
                   idx = idx + 1;
                   keys[idx] = -1;
                   emit Key;
                end
             else
                _SDL_Delay(10);
                step = step + 1;
                emit 10ms;
                emit Step;
                if step == 1000 then
                   break;
                end
             end
          end

          // REPLAY: re-execute from scratch with the recorded inputs (at
          // 10x speed); identical behavior is the reactive guarantee.
          int rounds = 0;
          loop do
             emit Restart;
             emit Seed = seed;
             step = 0;
             idx = 0;
             loop do
                if step == keys[idx] then
                   emit Key;
                   idx = idx + 1;
                else
                   _SDL_Delay(1);
                   step = step + 1;
                   emit 10ms;
                   emit Step;
                   if step == 1000 then
                      break;
                   end
                end
             end
             rounds = rounds + 1;
             if rounds == 2 then
                break;
             end
          end
          return rounds;
       end
       await forever;
    end
)";
const char* const kMarioReplay = kMarioReplayStr.c_str();

static const std::string kMarioBackwardsStr = std::string(R"(
    input int  Seed;
    input void Key;
    input void Step;
    input void Restart;
    internal void collision;
    par do
       loop do
          par/or do
)") + kMarioGameStr + R"(
          with
             await Restart;
          end
       end
    with
       async do
          // RECORD (as in the replay variant).
          int step = 0;
          int seed = _time(0);
          emit Seed = seed;
          int[64] keys;
          keys[0] = -1;
          int idx = 0;
          loop do
             _SDL_Event event;
             if _SDL_PollEvent(&event) then
                if event.type == _SDL_KEYDOWN then
                   keys[idx] = step;
                   idx = idx + 1;
                   keys[idx] = -1;
                   emit Key;
                end
             else
                _SDL_Delay(10);
                step = step + 1;
                emit 10ms;
                emit Step;
                if step == 200 then
                   break;
                end
             end
          end

          // BACKWARDS REPLAY: for step_ref = N..1, re-execute the first
          // step_ref steps with redraws off, then draw one frame.
          int step_ref = 200;
          loop do
             _redraw_on(0);
             emit Restart;
             emit Seed = seed;
             step = 0;
             idx = 0;
             loop do
                if step == keys[idx] then
                   emit Key;
                   idx = idx + 1;
                else
                   step = step + 1;
                   emit 10ms;
                   emit Step;
                   if step == step_ref then
                      break;
                   end
                end
             end
             _redraw_on(1);
             _mark_frame();
             _SDL_Delay(1);
             step_ref = step_ref - 10;
             if step_ref == 0 then
                break;
             end
          end
          return 0;
       end
       await forever;
    end
)";
const char* const kMarioBackwards = kMarioBackwardsStr.c_str();

rt::CBindings make_mario_bindings(display::Display& disp) {
    rt::CBindings c = display::make_sdl_bindings(disp);
    // Backwards replay: draw the current scene once even though per-step
    // redraws are off (the paper calls `_redraw(0,0,0,0)` with a tweak; we
    // snapshot the last scene explicitly, which is cleaner to assert on).
    c.fn("mark_frame", [&disp](rt::Engine&, std::span<const rt::Value>) {
        disp.mark_frame();
        return rt::Value::integer(0);
    });
    return c;
}

}  // namespace ceu::demos
