// The paper's demo applications (§3) as reusable artifacts: the Céu source
// of each program plus the support C bindings it needs. Shared by the
// runnable examples, the test suite, and the benches so all three exercise
// the exact same programs.
#pragma once

#include <memory>
#include <string>

#include "arduino/binding.hpp"
#include "display/binding.hpp"
#include "runtime/cbind.hpp"

namespace ceu::demos {

// ---------------------------------------------------------------------------
// §2: the three-trail counter (quickstart) and the temperature dataflow.
// ---------------------------------------------------------------------------

extern const char* const kQuickstart;
extern const char* const kTemperature;

// ---------------------------------------------------------------------------
// §3.1: the WSN ring (runs on wsn::CeuMote; no extra bindings needed).
// ---------------------------------------------------------------------------

extern const char* const kRing;

/// Multi-hop data collection (the protocol the paper's conclusion reports
/// students building): every non-sink mote samples a sensor periodically
/// and routes readings hop by hop toward mote 0, which `_collect`s them.
/// Needs `_Read_sensor` and `_collect` bindings (see the example/tests).
extern const char* const kMultihop;

// ---------------------------------------------------------------------------
// §3.2: the ship game (Arduino). Needs a ShipWorld for `_MAP`,
// `_map_generate`, `_redraw`, `_FINISH` on top of the Arduino bindings.
// ---------------------------------------------------------------------------

extern const char* const kShip;

/// The ship game's C-side state: the meteor map and the screen renderer.
class ShipWorld {
  public:
    static constexpr int kRows = 2;
    static constexpr int kCols = 48;

    explicit ShipWorld(arduino::Lcd& lcd, uint32_t seed = 7) : lcd_(lcd), seed_(seed) {}

    void generate();
    [[nodiscard]] int64_t map_at(int64_t row, int64_t col) const;
    void redraw(int64_t step, int64_t ship, int64_t points);

    [[nodiscard]] int finish_column() const { return kCols - 2; }
    [[nodiscard]] uint64_t redraws() const { return redraws_; }

  private:
    arduino::Lcd& lcd_;
    uint32_t seed_;
    uint32_t state_ = 1;
    char map_[kRows][kCols] = {};
    uint64_t redraws_ = 0;
};

/// Arduino bindings + ship-game helpers. `world`, `lcd`, `board` must
/// outlive the engine.
rt::CBindings make_ship_bindings(ShipWorld& world, arduino::Lcd& lcd,
                                 arduino::Board& board);

// ---------------------------------------------------------------------------
// §3.3: Mario (display substrate). Three environment variants:
//   kMarioLive      — plain event generator (play only)
//   kMarioReplay    — record 10s of play, then replay it (fast) forever
//   kMarioBackwards — record, then replay the gameplay backwards
// Each embeds the same unmodified game code (the demo's whole point).
// ---------------------------------------------------------------------------

extern const char* const kMarioLive;
extern const char* const kMarioReplay;
extern const char* const kMarioBackwards;

/// The Mario demos need SDL-ish bindings only.
rt::CBindings make_mario_bindings(display::Display& disp);

}  // namespace ceu::demos
