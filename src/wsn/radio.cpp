// RadioModel is header-only; this TU anchors the module.
#include "wsn/radio.hpp"

namespace ceu::wsn {
static_assert(sizeof(Packet) > 0);
}  // namespace ceu::wsn
