// nesC/TinyOS-style event-driven baseline runtime (paper §6, and the
// comparator of Table 1). Applications are callback objects: `booted`,
// `receive`, and `timer_fired` handlers run to completion on a single
// stack; `post`ed tasks run FIFO when the handler returns — the classic
// inversion-of-control structure Céu is contrasted against.
//
// The four Table-1 applications (Blink, Sense, Client, Server) ship here so
// the memory bench and the tests share one implementation.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "wsn/network.hpp"

namespace ceu::wsn {

class NescMote;

class NescApp {
  public:
    virtual ~NescApp() = default;
    virtual void booted() = 0;
    virtual void receive(const Packet& p) { (void)p; }
    virtual void timer_fired(int timer_id) { (void)timer_id; }

    /// Static RAM the application state needs (Table 1's RAM column).
    [[nodiscard]] virtual size_t ram_bytes() const = 0;

  protected:
    // Services provided by the hosting mote (valid after attachment).
    void post(std::function<void()> task);
    void start_timer(int id, Micros period, bool periodic);
    void stop_timer(int id);
    bool send(int dst, const Packet& p);
    void leds_set(int64_t v);
    [[nodiscard]] int node_id() const;
    [[nodiscard]] Micros now() const;

  private:
    friend class NescMote;
    NescMote* host_ = nullptr;
};

struct NescMoteConfig {
    Micros handler_cost = 400;      // per-event handler CPU (TinyOS is lean)
    size_t rx_queue_capacity = 2;
};

class NescMote final : public Mote {
  public:
    NescMote(int id, std::unique_ptr<NescApp> app, NescMoteConfig cfg = {});

    void boot(Network& net) override;
    void deliver(Network& net, const Packet& p) override;
    [[nodiscard]] Micros next_wakeup() const override;
    void wakeup(Network& net) override;

    [[nodiscard]] int64_t leds() const { return leds_; }
    [[nodiscard]] const std::vector<std::pair<Micros, int64_t>>& led_history() const {
        return led_history_;
    }
    [[nodiscard]] NescApp& app() { return *app_; }

    /// Modeled RAM: app state + task queue + timer table + rx buffer.
    [[nodiscard]] size_t ram_model_bytes() const;

  private:
    friend class NescApp;
    struct Timer {
        int id;
        Micros deadline;
        Micros period;
        bool periodic;
        bool active;
    };

    void run_tasks(Network& net);

    std::unique_ptr<NescApp> app_;
    NescMoteConfig cfg_;
    Network* net_ = nullptr;
    std::deque<std::function<void()>> tasks_;
    std::vector<Timer> timers_;
    std::deque<Packet> rx_queue_;
    Micros busy_until_ = 0;
    int64_t leds_ = 0;
    std::vector<std::pair<Micros, int64_t>> led_history_;
};

// ---------------------------------------------------------------------------
// The four Table-1 applications, nesC-style.
// ---------------------------------------------------------------------------

/// Blink: toggle led0 every 250ms (timer callback).
class NescBlinkApp final : public NescApp {
  public:
    void booted() override;
    void timer_fired(int) override;
    [[nodiscard]] size_t ram_bytes() const override { return sizeof(state_); }

  private:
    struct {
        uint8_t on;
    } state_{};
};

/// Sense: sample a (virtual) sensor every 100ms, show the reading on leds.
class NescSenseApp final : public NescApp {
  public:
    void booted() override;
    void timer_fired(int) override;
    [[nodiscard]] size_t ram_bytes() const override { return sizeof(state_); }

  private:
    struct {
        int16_t reading;
        uint16_t count;
    } state_{};
};

/// Client: sample every 250ms, buffer 4 readings, send them to mote 0,
/// retry with a 1s watchdog until an ack arrives.
class NescClientApp final : public NescApp {
  public:
    void booted() override;
    void timer_fired(int) override;
    void receive(const Packet& p) override;
    [[nodiscard]] size_t ram_bytes() const override { return sizeof(state_); }

  private:
    void flush();
    struct {
        int16_t buffer[4];
        uint8_t n;
        uint8_t awaiting_ack;
        uint16_t seq;
        int16_t reading;
    } state_{};
};

/// Server: receive batches, ack them, show the running count on leds.
class NescServerApp final : public NescApp {
  public:
    void booted() override;
    void receive(const Packet& p) override;
    void timer_fired(int) override;
    [[nodiscard]] size_t ram_bytes() const override { return sizeof(state_); }

  private:
    struct {
        uint32_t received;
        uint16_t last_seq;
        uint8_t blink_on;
    } state_{};
};

}  // namespace ceu::wsn
