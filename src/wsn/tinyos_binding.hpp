// TinyOS-style binding for Céu (paper §3): hosts a Céu program on a
// simulated mote, mapping OS services to C identifiers —
//   input events:  Radio_receive (carries a message handle)
//   C functions:   _Radio_send, _Radio_getPayload, _Leds_set,
//                  _Leds_led0Toggle/_led1Toggle/_led2Toggle
//   C constants:   _TOS_NODE_ID
// Wall-clock time comes from the network's virtual clock. Asynchronous
// blocks run when the mote is otherwise idle, charged a configurable CPU
// cost per slice (the mote CPU model behind the Table 2 reproduction).
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "codegen/flatten.hpp"
#include "host/instance.hpp"
#include "runtime/engine.hpp"
#include "wsn/network.hpp"

namespace ceu::wsn {

struct CeuMoteConfig {
    std::string source;                 // the Céu program this mote runs
    /// Pre-compiled shared program: when set, `source` is ignored and the
    /// mote co-owns this immutable program instead of compiling its own —
    /// a fleet of N motes running the same firmware parses it once, not N
    /// times, and per-mote memory scales with runtime state only.
    std::shared_ptr<const flat::CompiledProgram> program;
    Micros reaction_cost = 500;         // CPU charged per external reaction
    Micros async_slice_cost = kMs;      // CPU charged per go_async slice
    size_t rx_queue_capacity = 2;       // buffered receives (TinyOS queues)
    /// Engine knobs (the soak harness turns on trap_faults and the
    /// invariant checker here).
    rt::EngineOptions engine_options;
    /// Application-specific bindings layered over the TinyOS ones (e.g. the
    /// multi-hop demo's `_Read_sensor` / `_collect`). Called once at
    /// construction with the mote id.
    std::function<void(rt::CBindings&, int id)> customize;
};

class CeuMote final : public Mote {
  public:
    CeuMote(int id, CeuMoteConfig cfg);
    ~CeuMote() override;

    void boot(Network& net) override;
    void deliver(Network& net, const Packet& p) override;
    [[nodiscard]] Micros next_wakeup() const override;
    void wakeup(Network& net) override;

    /// Power failure: the engine is power-cycled through rt::Engine::reset
    /// (the §4.3 gate-clearing machinery), pending receives are lost.
    void crash(Network& net) override;
    /// Boot the clean engine again at the current (local) time.
    void reboot(Network& net) override;
    void set_clock_model(double drift_ppm, Micros jitter, uint64_t seed) override;

    /// The mote's local clock: network time plus drift plus seeded jitter.
    /// Identity until set_clock_model is called.
    [[nodiscard]] Micros local_now(Micros global);
    /// Inverse of the drift component: the global instant at which the
    /// local clock reaches `local` (jitter excluded — it only runs ahead).
    [[nodiscard]] Micros global_for(Micros local) const;

    [[nodiscard]] rt::Engine& engine() { return inst_->engine(); }
    /// The embedding facade hosting this mote's program (sink registration,
    /// stats snapshots).
    [[nodiscard]] host::Instance& instance() { return *inst_; }
    [[nodiscard]] const std::vector<std::string>& trace() const { return inst_->trace(); }
    /// Boots since start (1 = never crashed, or crashed and not yet back).
    [[nodiscard]] uint64_t boots() const { return boots_; }

    /// Current LED register and its history (timestamped) — the observable
    /// the ring demo and the blink experiment assert on.
    [[nodiscard]] int64_t leds() const { return leds_; }
    [[nodiscard]] const std::vector<std::pair<Micros, int64_t>>& led_history() const {
        return led_history_;
    }

  private:
    void dispatch_rx(Network& net);
    void set_leds(int64_t v);
    rt::Value radio_get_payload(rt::Value arg);
    int64_t resolve_handle(rt::Value arg);

    CeuMoteConfig cfg_;
    std::shared_ptr<const flat::CompiledProgram> cp_;
    rt::CBindings bindings_;  // mote-specific extras; Instance adds the standard set
    std::unique_ptr<host::Instance> inst_;
    Network* net_ = nullptr;  // valid only during callbacks

    std::deque<Packet> rx_queue_;
    Micros busy_until_ = 0;
    uint64_t boots_ = 0;

    // Clock fault model (identity until set_clock_model).
    double drift_ppm_ = 0.0;
    Micros clock_jitter_ = 0;
    uint64_t clock_rng_state_ = 0;

    // Message handles: a small recycled pool standing in for message_t*.
    static constexpr size_t kMsgPool = 64;
    std::vector<Packet> msgs_;
    size_t next_handle_ = 0;

    int64_t leds_ = 0;
    std::vector<std::pair<Micros, int64_t>> led_history_;
};

}  // namespace ceu::wsn
