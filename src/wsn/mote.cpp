// Mote is an interface; this TU anchors the module.
#include "wsn/mote.hpp"

namespace ceu::wsn {
static_assert(Packet::kPayloadWords >= 1);
}  // namespace ceu::wsn
