#include "wsn/nesc_runtime.hpp"

#include <cassert>

namespace ceu::wsn {

// ---------------------------------------------------------------------------
// NescApp service forwarding
// ---------------------------------------------------------------------------

void NescApp::post(std::function<void()> task) { host_->tasks_.push_back(std::move(task)); }

void NescApp::start_timer(int id, Micros period, bool periodic) {
    for (auto& t : host_->timers_) {
        if (t.id == id) {
            t.deadline = host_->net_->now() + period;
            t.period = period;
            t.periodic = periodic;
            t.active = true;
            return;
        }
    }
    host_->timers_.push_back({id, host_->net_->now() + period, period, periodic, true});
}

void NescApp::stop_timer(int id) {
    for (auto& t : host_->timers_) {
        if (t.id == id) t.active = false;
    }
}

bool NescApp::send(int dst, const Packet& p) {
    return host_->net_->send(host_->id(), dst, p);
}

void NescApp::leds_set(int64_t v) {
    host_->leds_ = v;
    host_->led_history_.emplace_back(host_->net_->now(), v);
}

int NescApp::node_id() const { return host_->id(); }
Micros NescApp::now() const { return host_->net_->now(); }

// ---------------------------------------------------------------------------
// NescMote
// ---------------------------------------------------------------------------

NescMote::NescMote(int id, std::unique_ptr<NescApp> app, NescMoteConfig cfg)
    : Mote(id), app_(std::move(app)), cfg_(cfg) {
    app_->host_ = this;
}

void NescMote::boot(Network& net) {
    net_ = &net;
    app_->booted();
    run_tasks(net);
    busy_until_ = net.now() + cfg_.handler_cost;
    net_ = nullptr;
}

void NescMote::deliver(Network& net, const Packet& p) {
    (void)net;
    if (rx_queue_.size() >= cfg_.rx_queue_capacity) {
        ++rx_dropped;
        return;
    }
    rx_queue_.push_back(p);
}

Micros NescMote::next_wakeup() const {
    Micros best = -1;
    auto consider = [&](Micros t) {
        if (t >= 0 && (best < 0 || t < best)) best = t;
    };
    if (!rx_queue_.empty() || !tasks_.empty()) consider(busy_until_);
    for (const auto& t : timers_) {
        if (t.active) consider(std::max(t.deadline, busy_until_));
    }
    return best;
}

void NescMote::wakeup(Network& net) {
    net_ = &net;
    Micros now = net.now();
    if (now >= busy_until_) {
        if (!rx_queue_.empty()) {
            Packet p = rx_queue_.front();
            rx_queue_.pop_front();
            app_->receive(p);
            ++rx_count;
            busy_until_ = now + cfg_.handler_cost;
        } else {
            // Earliest due timer.
            Timer* due = nullptr;
            for (auto& t : timers_) {
                if (t.active && t.deadline <= now &&
                    (due == nullptr || t.deadline < due->deadline)) {
                    due = &t;
                }
            }
            if (due != nullptr) {
                if (due->periodic) {
                    due->deadline += due->period;  // drift-free re-arm
                } else {
                    due->active = false;
                }
                app_->timer_fired(due->id);
                busy_until_ = now + cfg_.handler_cost;
            } else if (!tasks_.empty()) {
                run_tasks(net);
                busy_until_ = now + cfg_.handler_cost;
            }
        }
        run_tasks(net);
    }
    net_ = nullptr;
}

void NescMote::run_tasks(Network&) {
    // Tasks run to completion, FIFO, within the current busy window.
    while (!tasks_.empty()) {
        auto task = std::move(tasks_.front());
        tasks_.pop_front();
        task();
    }
}

size_t NescMote::ram_model_bytes() const {
    return app_->ram_bytes() + 8 /*task queue*/ + timers_.size() * 10 /*timer table*/ +
           cfg_.rx_queue_capacity * sizeof(Packet) / 4 /*16-bit-platform message*/ + 16;
}

// ---------------------------------------------------------------------------
// Applications
// ---------------------------------------------------------------------------

void NescBlinkApp::booted() { start_timer(0, 250 * kMs, /*periodic=*/true); }

void NescBlinkApp::timer_fired(int) {
    state_.on ^= 1;
    leds_set(state_.on);
}

void NescSenseApp::booted() { start_timer(0, 100 * kMs, true); }

void NescSenseApp::timer_fired(int) {
    // Virtual sensor: a deterministic ramp (stands in for an ADC read).
    state_.reading = static_cast<int16_t>((state_.count * 17) % 1024);
    ++state_.count;
    leds_set(state_.reading >> 7);
}

void NescClientApp::booted() { start_timer(0, 250 * kMs, true); }

void NescClientApp::timer_fired(int id) {
    if (id == 0) {
        state_.reading = static_cast<int16_t>((state_.seq * 31) % 1024);
        if (state_.n < 4) state_.buffer[state_.n++] = state_.reading;
        if (state_.n == 4 && !state_.awaiting_ack) flush();
    } else if (id == 1 && state_.awaiting_ack) {
        flush();  // retry watchdog
    }
}

void NescClientApp::flush() {
    Packet p;
    p.payload[0] = state_.seq;
    for (int i = 0; i < 4; ++i) p.payload[static_cast<size_t>(i) + 1] = state_.buffer[i];
    send(0, p);
    state_.awaiting_ack = 1;
    start_timer(1, kSec, false);
}

void NescClientApp::receive(const Packet& p) {
    if (p.payload[0] == state_.seq) {  // ack for the current batch
        state_.awaiting_ack = 0;
        state_.n = 0;
        ++state_.seq;
        stop_timer(1);
    }
}

void NescServerApp::booted() { start_timer(0, 500 * kMs, true); }

void NescServerApp::receive(const Packet& p) {
    ++state_.received;
    state_.last_seq = static_cast<uint16_t>(p.payload[0]);
    Packet ack;
    ack.payload[0] = p.payload[0];
    send(p.src, ack);
    leds_set(static_cast<int64_t>(state_.received & 0x7));
}

void NescServerApp::timer_fired(int) {
    state_.blink_on ^= 1;  // heartbeat led
}

}  // namespace ceu::wsn
