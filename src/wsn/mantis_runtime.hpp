// MantisOS-style preemptive multithreading baseline (the Table 2
// comparator, and the asynchronous side of the §6 blink experiment).
//
// Threads are resumable step objects: each `resume` returns the action the
// thread performs next (compute for N microseconds, sleep, block on the
// message queue, exit). The kernel schedules the highest-priority ready
// thread, round-robin with a time-slice among equals, preempting on
// message arrival — a faithful skeleton of a priority-scheduled RTOS,
// including the context-switch cost and the wake-to-run latency that make
// naive relative-sleep timers drift (paper §6).
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "wsn/network.hpp"

namespace ceu::wsn {

class MantisKernel;

class MantisThread {
  public:
    struct Action {
        enum class Kind { Compute, Sleep, WaitMsg, Exit };
        Kind kind = Kind::Exit;
        Micros amount = 0;  // Compute: duration; Sleep: duration

        static Action compute(Micros us) { return {Kind::Compute, us}; }
        static Action sleep(Micros us) { return {Kind::Sleep, us}; }
        static Action wait_msg() { return {Kind::WaitMsg, 0}; }
        static Action exit() { return {Kind::Exit, 0}; }
    };

    virtual ~MantisThread() = default;

    /// Called when the previous action completed (or at boot). `now` is the
    /// virtual time at which the thread actually got the CPU back.
    virtual Action resume(MantisKernel& k, Micros now) = 0;

    /// Called right before `resume` when a WaitMsg was satisfied.
    virtual void on_msg(const Packet& p) { (void)p; }

    int priority = 1;  // larger = more urgent
};

struct MantisConfig {
    Micros quantum = 10 * kMs;       // round-robin time slice
    Micros ctx_switch = 150;         // per-switch kernel overhead
    Micros wake_latency = 300;       // interrupt-to-ready latency
    size_t msg_queue_capacity = 2;
};

/// The per-mote kernel. Exposed separately from the Mote so the blink
/// bench can run it stand-alone (no radio).
class MantisKernel {
  public:
    explicit MantisKernel(MantisConfig cfg = {}) : cfg_(cfg) {}

    MantisThread& add(std::unique_ptr<MantisThread> t);

    void boot(Micros now);
    void msg_arrival(const Packet& p, Micros now);
    [[nodiscard]] Micros next_event() const;
    void advance(Micros now);
    [[nodiscard]] bool idle() const;

    /// Observability for experiments.
    uint64_t messages_handled = 0;
    uint64_t messages_dropped = 0;
    uint64_t context_switches = 0;

    /// Lets threads ask for the hosting network mote (may be null).
    Network* net = nullptr;
    int node_id = -1;

  private:
    struct Tcb {
        std::unique_ptr<MantisThread> thread;
        enum class State { Ready, Running, Sleeping, Blocked, Done } state = State::Ready;
        Micros remaining = 0;    // compute left
        Micros wake_at = 0;      // sleeping threads
        uint64_t last_run = 0;   // round-robin fairness
        bool fresh = true;       // needs first resume()
    };

    void schedule(Micros now);
    void apply_action(Tcb& t, MantisThread::Action a, Micros now);
    [[nodiscard]] int pick_next(Micros now) const;

    MantisConfig cfg_;
    std::vector<Tcb> threads_;
    std::deque<Packet> msg_queue_;
    int running_ = -1;
    Micros slice_end_ = -1;   // running thread's current slice ends here
    Micros last_ = 0;         // last accounting instant
    uint64_t rr_ = 0;
};

/// Mote adapter: radio arrivals feed the kernel's message queue.
class MantisMote final : public Mote {
  public:
    MantisMote(int id, MantisConfig cfg = {}) : Mote(id), kernel_(cfg) {
        kernel_.node_id = id;
    }

    MantisKernel& kernel() { return kernel_; }

    void boot(Network& net) override {
        kernel_.net = &net;
        kernel_.boot(net.now());
    }
    void deliver(Network& net, const Packet& p) override {
        kernel_.msg_arrival(p, net.now());
        rx_count = kernel_.messages_handled;
        rx_dropped = kernel_.messages_dropped;
    }
    [[nodiscard]] Micros next_wakeup() const override { return kernel_.next_event(); }
    void wakeup(Network& net) override {
        kernel_.advance(net.now());
        rx_count = kernel_.messages_handled;
        rx_dropped = kernel_.messages_dropped;
    }

  private:
    MantisKernel kernel_;
};

// ---------------------------------------------------------------------------
// Ready-made threads for the experiments
// ---------------------------------------------------------------------------

/// Blocks on the message queue; each message costs `service` CPU. A message
/// counts as `processed` only when its service computation completes — the
/// latency the responsiveness experiment measures.
class MantisReceiverThread final : public MantisThread {
  public:
    explicit MantisReceiverThread(Micros service) : service_(service) {}
    Action resume(MantisKernel&, Micros now) override {
        if (serving_) {
            serving_ = false;
            ++processed;
            last_processed_at = now;
        }
        if (pending_ > 0) {
            --pending_;
            serving_ = true;
            return Action::compute(service_);
        }
        return Action::wait_msg();
    }
    void on_msg(const Packet&) override { ++pending_; }

    uint64_t processed = 0;
    Micros last_processed_at = 0;

  private:
    Micros service_;
    uint32_t pending_ = 0;
    bool serving_ = false;
};

/// An infinite loop: computes forever in chunks (the "5 loops" of Table 2).
class MantisLoopThread final : public MantisThread {
  public:
    explicit MantisLoopThread(Micros chunk = kMs) : chunk_(chunk) {}
    Action resume(MantisKernel&, Micros) override { return Action::compute(chunk_); }

  private:
    Micros chunk_;
};

/// Sends a packet every `interval`, `count` times (0 = forever).
class MantisSenderThread final : public MantisThread {
  public:
    MantisSenderThread(int dst, Micros interval, uint64_t count)
        : dst_(dst), interval_(interval), count_(count) {}
    Action resume(MantisKernel& k, Micros now) override {
        if (started_) {
            if (count_ != 0 && sent_ >= count_) return Action::exit();
            Packet p;
            p.payload[0] = static_cast<int64_t>(sent_++);
            if (k.net != nullptr) k.net->send(k.node_id, dst_, p);
        }
        started_ = true;
        // Drift-free schedule: compensate for scheduling latency so the
        // send *rate* stays exact (a steady traffic source).
        next_at_ += interval_;
        Micros d = next_at_ > now ? next_at_ - now : 1;
        return Action::sleep(d);
    }

  private:
    int dst_;
    Micros interval_;
    uint64_t count_;
    uint64_t sent_ = 0;
    bool started_ = false;
    Micros next_at_ = 0;
};

/// The naive blink thread of §6: toggles a led, then sleeps *relative to
/// when it actually ran* — scheduling latency accumulates as drift.
class MantisBlinkThread final : public MantisThread {
  public:
    MantisBlinkThread(Micros period, Micros toggle_cost = 200)
        : period_(period), toggle_cost_(toggle_cost) {}
    Action resume(MantisKernel&, Micros now) override {
        if (computing_) {
            // The toggle computation just finished: the led visibly changes
            // *now*, and the next period is measured from this (possibly
            // late) instant — the naive pattern that drifts.
            computing_ = false;
            on_ = !on_;
            toggles.emplace_back(now, on_);
            return Action::sleep(period_);
        }
        computing_ = true;
        return Action::compute(toggle_cost_);
    }

    std::vector<std::pair<Micros, bool>> toggles;

  private:
    Micros period_;
    Micros toggle_cost_;
    bool computing_ = false;
    bool on_ = false;
};

}  // namespace ceu::wsn
