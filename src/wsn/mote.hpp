// Abstract mote: a node in the discrete-event network simulation. Concrete
// motes host the Céu engine (tinyos_binding), the event-driven baseline
// (nesc_runtime) or the preemptive-thread baseline (mantis_runtime).
#pragma once

#include <cstdint>

#include "util/timeval.hpp"
#include "wsn/radio.hpp"

namespace ceu::wsn {

class Network;

class Mote {
  public:
    explicit Mote(int id) : id_(id) {}
    virtual ~Mote() = default;
    Mote(const Mote&) = delete;
    Mote& operator=(const Mote&) = delete;

    [[nodiscard]] int id() const { return id_; }

    /// Called once when the network starts.
    virtual void boot(Network& net) = 0;

    /// A packet arrived at this mote's radio at the current network time.
    virtual void deliver(Network& net, const Packet& p) = 0;

    /// The next instant this mote needs CPU (timer expiry, end of a busy
    /// period, pending background work). -1 = nothing scheduled.
    [[nodiscard]] virtual Micros next_wakeup() const { return -1; }

    /// Called when the network clock reaches next_wakeup().
    virtual void wakeup(Network& net) { (void)net; }

    // -- fault hooks (driven by the network's fault layer) -------------------

    /// Power failure: the mote goes silent — no deliveries, no wakeups —
    /// until reboot(). Subclasses that host a runtime tear it down here
    /// (volatile state is lost); the base implementation only freezes.
    virtual void crash(Network& net) {
        (void)net;
        crashed_ = true;
    }

    /// Power restored: boot again from a clean state at the current
    /// network time.
    virtual void reboot(Network& net) {
        (void)net;
        crashed_ = false;
    }

    [[nodiscard]] bool crashed() const { return crashed_; }

    /// Clock fault: give this mote a drifting (ppm of elapsed virtual
    /// time), jittery (bounded, seed-drawn) local clock. The base
    /// implementation ignores it; runtimes that timestamp reactions
    /// override.
    virtual void set_clock_model(double drift_ppm, Micros jitter, uint64_t seed) {
        (void)drift_ppm;
        (void)jitter;
        (void)seed;
    }

    // Simple observability shared by all runtimes.
    uint64_t rx_count = 0;      // messages the application actually handled
    uint64_t rx_dropped = 0;    // arrivals lost (busy/buffer-full)
    uint64_t tx_count = 0;

  protected:
    bool crashed_ = false;

  private:
    int id_;
};

}  // namespace ceu::wsn
