// Radio model for the WSN substrate: topology (directed links), per-link
// latency, and deterministic loss injection. The paper's evaluation runs on
// micaz motes within radio range; this model preserves what the experiments
// depend on — delivery order, latency, losses, and per-mote isolation.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "util/timeval.hpp"

namespace ceu::wsn {

/// A radio message: fixed-capacity payload of machine words, mirroring
/// TinyOS's message_t with a small data region.
struct Packet {
    static constexpr size_t kPayloadWords = 8;
    int src = -1;
    int dst = -1;
    std::array<int64_t, kPayloadWords> payload{};
};

class RadioModel {
  public:
    /// Adds a directed link with the given propagation+MAC latency.
    void link(int from, int to, Micros latency = kMs) {
        links_[{from, to}] = latency;
    }
    void bidi_link(int a, int b, Micros latency = kMs) {
        link(a, b, latency);
        link(b, a, latency);
    }

    [[nodiscard]] bool connected(int from, int to) const {
        return links_.count({from, to}) > 0;
    }
    [[nodiscard]] Micros latency(int from, int to) const {
        auto it = links_.find({from, to});
        return it == links_.end() ? -1 : it->second;
    }

    /// Loss injection: drop one message in every `period` (0 = lossless),
    /// counted per model — deterministic, so experiments replay exactly.
    void set_loss_period(uint64_t period) { loss_period_ = period; }
    bool should_drop() {
        if (loss_period_ == 0) return false;
        return ++sent_ % loss_period_ == 0;
    }

    /// Administrative kill-switch for a mote's radio (network-down tests).
    void set_down(int mote, bool down) { down_[mote] = down; }
    [[nodiscard]] bool is_down(int mote) const {
        auto it = down_.find(mote);
        return it != down_.end() && it->second;
    }

    /// Fault-layer kill-switch for a single directed link. Unlike removing
    /// the link, a blocked link still *exists* (sends on it count as radio
    /// drops, not routing failures) — the distinction the soak assertions
    /// use to tell topology bugs from injected loss.
    void set_link_down(int from, int to, bool down) {
        if (down) link_down_.insert({from, to});
        else link_down_.erase({from, to});
    }
    [[nodiscard]] bool link_blocked(int from, int to) const {
        return link_down_.count({from, to}) > 0;
    }

  private:
    std::map<std::pair<int, int>, Micros> links_;
    std::map<int, bool> down_;
    std::set<std::pair<int, int>> link_down_;
    uint64_t loss_period_ = 0;
    uint64_t sent_ = 0;
};

}  // namespace ceu::wsn
