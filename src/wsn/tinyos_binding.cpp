#include "wsn/tinyos_binding.hpp"

#include <cmath>

#include "fault/prng.hpp"

namespace ceu::wsn {

using rt::Engine;
using rt::Value;

CeuMote::CeuMote(int id, CeuMoteConfig cfg)
    : Mote(id),
      cfg_(std::move(cfg)),
      cp_(cfg_.program != nullptr
              ? cfg_.program
              : std::make_shared<const flat::CompiledProgram>(
                    flat::compile(cfg_.source))) {
    msgs_.resize(kMsgPool);

    // Only the mote-specific bindings live here; host::Instance layers them
    // over the standard set (extras win on conflicts).
    bindings_.constant("TOS_NODE_ID", id);

    bindings_.fn("Radio_send", [this](Engine&, std::span<const Value> args) {
        if (args.size() < 2 || net_ == nullptr) return Value::integer(0);
        int dst = static_cast<int>(args[0].as_int());
        int64_t h = resolve_handle(args[1]);
        if (h <= 0) return Value::integer(0);
        bool ok = net_->send(this->id(), dst, msgs_[static_cast<size_t>(h - 1)]);
        return Value::integer(ok ? 1 : 0);
    });

    bindings_.fn("Radio_getPayload", [this](Engine&, std::span<const Value> args) {
        if (args.empty()) return Value::pointer(nullptr);
        return radio_get_payload(args[0]);
    });

    auto toggle = [this](int bit) {
        set_leds(leds_ ^ (int64_t{1} << bit));
        return Value::integer(0);
    };
    bindings_.fn("Leds_set", [this](Engine&, std::span<const Value> args) {
        set_leds(args.empty() ? 0 : args[0].as_int());
        return Value::integer(0);
    });
    bindings_.fn("Leds_led0Toggle",
                 [toggle](Engine&, std::span<const Value>) { return toggle(0); });
    bindings_.fn("Leds_led1Toggle",
                 [toggle](Engine&, std::span<const Value>) { return toggle(1); });
    bindings_.fn("Leds_led2Toggle",
                 [toggle](Engine&, std::span<const Value>) { return toggle(2); });

    if (cfg_.customize) cfg_.customize(bindings_, id);
    host::Config hcfg;
    hcfg.engine = cfg_.engine_options;
    hcfg.bindings = &bindings_;
    inst_ = std::make_unique<host::Instance>(cp_, hcfg);
}

CeuMote::~CeuMote() = default;

void CeuMote::set_clock_model(double drift_ppm, Micros jitter, uint64_t seed) {
    drift_ppm_ = drift_ppm;
    clock_jitter_ = jitter;
    clock_rng_state_ = seed | 1;
}

Micros CeuMote::local_now(Micros global) {
    Micros local = global;
    if (drift_ppm_ != 0.0) {
        local += static_cast<Micros>(static_cast<double>(global) * drift_ppm_ / 1e6);
    }
    if (clock_jitter_ > 0) {
        local += static_cast<Micros>(fault::Prng(clock_rng_state_ += 2).below(
            static_cast<uint64_t>(clock_jitter_) + 1));
    }
    // The engine clamps monotonically (go_time takes the max), so a jitter
    // draw smaller than the previous one is harmless.
    return local;
}

void CeuMote::crash(Network& net) {
    Mote::crash(net);
    rx_queue_.clear();  // queued receives were in volatile RAM
    // Power loss: every trail, gate, timer and slot is discarded through
    // the engine's §4.3-based reset, leaving a verified-bootable engine.
    inst_->reset();
}

void CeuMote::reboot(Network& net) {
    Mote::reboot(net);
    net_ = &net;
    inst_->advance_to(local_now(net.now()));
    inst_->boot();
    ++boots_;
    busy_until_ = net.now() + cfg_.reaction_cost;
    net_ = nullptr;
}

void CeuMote::set_leds(int64_t v) {
    leds_ = v;
    led_history_.emplace_back(net_ != nullptr ? net_->now() : 0, v);
}

int64_t CeuMote::resolve_handle(Value arg) {
    if (arg.is_ptr() && arg.p != nullptr) return *arg.p;
    return arg.as_int();
}

Value CeuMote::radio_get_payload(Value arg) {
    int64_t h = 0;
    if (arg.is_ptr() && arg.p != nullptr) {
        h = *arg.p;
        if (h <= 0 || static_cast<size_t>(h) > kMsgPool) {
            // A fresh local `_message_t msg`: allocate a pooled handle.
            next_handle_ = next_handle_ % kMsgPool + 1;
            h = static_cast<int64_t>(next_handle_);
            *arg.p = h;
            msgs_[static_cast<size_t>(h - 1)].payload.fill(0);
        }
    } else {
        h = arg.as_int();
    }
    if (h <= 0 || static_cast<size_t>(h) > kMsgPool) return Value::pointer(nullptr);
    return Value::pointer(msgs_[static_cast<size_t>(h - 1)].payload.data());
}

void CeuMote::boot(Network& net) {
    net_ = &net;
    inst_->advance_to(local_now(net.now()));
    inst_->boot();
    ++boots_;
    busy_until_ = net.now() + cfg_.reaction_cost;
    net_ = nullptr;
}

void CeuMote::deliver(Network& net, const Packet& p) {
    if (rx_queue_.size() >= cfg_.rx_queue_capacity) {
        ++rx_dropped;
        return;
    }
    rx_queue_.push_back(p);
    (void)net;
}

Micros CeuMote::global_for(Micros local) const {
    if (drift_ppm_ == 0.0) return local;
    double factor = 1.0 + drift_ppm_ / 1e6;
    auto g = static_cast<Micros>(std::ceil(static_cast<double>(local) / factor));
    // Guard against rounding: the local clock at `g` must have reached
    // `local`, or a drifting mote would wake up a tick early and spin.
    while (g + static_cast<Micros>(static_cast<double>(g) * drift_ppm_ / 1e6) < local) {
        ++g;
    }
    return g;
}

Micros CeuMote::next_wakeup() const {
    const rt::Engine& eng = inst_->engine();
    if (eng.status() != Engine::Status::Running) return -1;
    Micros best = -1;
    auto consider = [&](Micros t) {
        if (t >= 0 && (best < 0 || t < best)) best = t;
    };
    if (!rx_queue_.empty()) consider(busy_until_);
    // Engine deadlines are in the mote's (possibly drifting) local time;
    // the network schedules in global time.
    Micros deadline = eng.next_timer_deadline();
    if (deadline >= 0) consider(std::max(global_for(deadline), busy_until_));
    if (eng.has_async_work()) consider(busy_until_);
    return best;
}

void CeuMote::wakeup(Network& net) {
    net_ = &net;
    Micros now = net.now();
    if (inst_->status() != Engine::Status::Running) {
        net_ = nullptr;
        return;
    }
    // Priority: queued radio input, then due timers, then async slices —
    // synchronous inputs outrank long computations (paper §2.7).
    if (!rx_queue_.empty() && now >= busy_until_) {
        dispatch_rx(net);
    } else {
        Micros deadline = inst_->engine().next_timer_deadline();
        if (deadline >= 0 && deadline <= local_now(now) && now >= busy_until_) {
            inst_->advance_to(local_now(now));
            busy_until_ = now + cfg_.reaction_cost;
        } else if (inst_->engine().has_async_work() && now >= busy_until_) {
            inst_->advance_to(local_now(now));
            if (inst_->status() == Engine::Status::Running) inst_->step_async();
            busy_until_ = now + cfg_.async_slice_cost;
        }
    }
    net_ = nullptr;
}

void CeuMote::dispatch_rx(Network& net) {
    Packet p = rx_queue_.front();
    rx_queue_.pop_front();
    // Stash the message in the pool and hand the program its handle.
    next_handle_ = next_handle_ % kMsgPool + 1;
    int64_t h = static_cast<int64_t>(next_handle_);
    msgs_[static_cast<size_t>(h - 1)] = p;
    inst_->advance_to(local_now(net.now()));
    if (inst_->status() == Engine::Status::Running) {
        inst_->try_inject("Radio_receive", Value::integer(h));
        ++rx_count;
    }
    busy_until_ = net.now() + cfg_.reaction_cost;
}

}  // namespace ceu::wsn
