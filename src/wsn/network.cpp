#include "wsn/network.hpp"

#include <cassert>

namespace ceu::wsn {

Mote& Network::add(std::unique_ptr<Mote> mote) {
    assert(!started_ && "motes must be added before start()");
    assert(mote->id() == static_cast<int>(motes_.size()) &&
           "mote ids must be dense and in order");
    motes_.push_back(std::move(mote));
    return *motes_.back();
}

void Network::inject(fault::FaultPlan plan) {
    fault_ = std::make_unique<fault::Session>(std::move(plan));
}

bool Network::send(int src, int dst, const Packet& p) {
    ++packets_sent;
    motes_[static_cast<size_t>(src)]->tx_count++;
    if (dst < 0 || static_cast<size_t>(dst) >= motes_.size() ||
        !radio_.connected(src, dst)) {
        // No link at all: a routing/topology failure, not radio loss.
        ++packets_unroutable;
        return false;
    }
    if (radio_.is_down(src) || radio_.is_down(dst) || radio_.link_blocked(src, dst) ||
        radio_.should_drop()) {
        ++packets_dropped;
        return false;
    }
    if (fault_ && fault_->roll_drop(src, dst)) {
        ++packets_dropped;
        return false;
    }
    Packet sent = p;
    sent.src = src;
    sent.dst = dst;
    if (fault_ && fault_->roll_corrupt()) {
        size_t w = static_cast<size_t>(fault_->corrupt_word(Packet::kPayloadWords));
        sent.payload[w] ^= fault_->corrupt_mask();
        ++packets_corrupted;
    }
    Micros latency = radio_.latency(src, dst);
    Micros jitter = fault_ ? fault_->roll_jitter() : 0;
    in_flight_.push({now_ + latency + jitter, seq_++, sent});
    if (fault_ && fault_->roll_duplicate()) {
        // The copy draws its own jitter, so duplicates may also reorder.
        in_flight_.push({now_ + latency + fault_->roll_jitter(), seq_++, sent});
        ++packets_duplicated;
    }
    return true;
}

void Network::start() {
    started_ = true;
    if (fault_) {
        for (const fault::ClockFault& c : fault_->plan().clocks()) {
            if (c.mote >= 0 && static_cast<size_t>(c.mote) < motes_.size()) {
                motes_[static_cast<size_t>(c.mote)]->set_clock_model(
                    c.drift_ppm, c.jitter,
                    fault_->plan().seed() ^ static_cast<uint64_t>(c.mote));
            }
        }
    }
    for (auto& m : motes_) m->boot(*this);
}

void Network::apply_fault(const fault::Action& a) {
    using Kind = fault::Action::Kind;
    auto valid = [&](int m) {
        return m >= 0 && static_cast<size_t>(m) < motes_.size();
    };
    switch (a.kind) {
        case Kind::LinkDown:
            radio_.set_link_down(a.a, a.b, true);
            break;
        case Kind::LinkUp:
            radio_.set_link_down(a.a, a.b, false);
            break;
        case Kind::RadioDown:
            radio_.set_down(a.a, true);
            break;
        case Kind::RadioUp:
            radio_.set_down(a.a, false);
            break;
        case Kind::Crash:
            if (valid(a.a) && !motes_[static_cast<size_t>(a.a)]->crashed()) {
                motes_[static_cast<size_t>(a.a)]->crash(*this);
                ++motes_crashed;
            }
            break;
        case Kind::Reboot:
            if (valid(a.a) && motes_[static_cast<size_t>(a.a)]->crashed()) {
                motes_[static_cast<size_t>(a.a)]->reboot(*this);
                ++motes_rebooted;
            }
            break;
    }
}

bool Network::step(Micros limit) {
    // Next event: scheduled fault, in-flight delivery, or mote wakeup.
    // Ties resolve fault > delivery > wakeup (fixed order = determinism).
    Micros next = -1;
    int wake_mote = -1;
    bool fault_due = false;
    if (fault_) {
        Micros f = fault_->next_action_at();
        if (f >= 0) {
            next = f;
            fault_due = true;
        }
    }
    if (!in_flight_.empty() && (next < 0 || in_flight_.top().at < next)) {
        next = in_flight_.top().at;
        fault_due = false;
    }
    for (auto& m : motes_) {
        if (m->crashed()) continue;  // a crashed mote is silent until reboot
        Micros w = m->next_wakeup();
        if (w >= 0 && (next < 0 || w < next)) {
            next = w;
            wake_mote = m->id();
            fault_due = false;
        }
    }
    if (next < 0 || next > limit) {
        now_ = limit;
        return false;
    }
    now_ = std::max(now_, next);
    if (fault_due) {
        for (const fault::Action& a : fault_->pop_due(now_)) apply_fault(a);
        return true;
    }
    if (wake_mote >= 0) {
        motes_[static_cast<size_t>(wake_mote)]->wakeup(*this);
        return true;
    }
    InFlight f = in_flight_.top();
    in_flight_.pop();
    if (motes_[static_cast<size_t>(f.packet.dst)]->crashed()) {
        ++packets_dropped;  // nobody is listening
        return true;
    }
    ++packets_delivered;
    motes_[static_cast<size_t>(f.packet.dst)]->deliver(*this, f.packet);
    return true;
}

void Network::run_until(Micros t) {
    while (now_ < t) {
        if (!step(t)) break;
    }
}

}  // namespace ceu::wsn
