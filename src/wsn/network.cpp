#include "wsn/network.hpp"

#include <cassert>

namespace ceu::wsn {

Mote& Network::add(std::unique_ptr<Mote> mote) {
    assert(!started_ && "motes must be added before start()");
    assert(mote->id() == static_cast<int>(motes_.size()) &&
           "mote ids must be dense and in order");
    motes_.push_back(std::move(mote));
    return *motes_.back();
}

bool Network::send(int src, int dst, const Packet& p) {
    ++packets_sent;
    motes_[static_cast<size_t>(src)]->tx_count++;
    if (radio_.is_down(src) || radio_.is_down(dst) || !radio_.connected(src, dst) ||
        radio_.should_drop()) {
        ++packets_dropped;
        return false;
    }
    Packet sent = p;
    sent.src = src;
    sent.dst = dst;
    in_flight_.push({now_ + radio_.latency(src, dst), seq_++, sent});
    return true;
}

void Network::start() {
    started_ = true;
    for (auto& m : motes_) m->boot(*this);
}

bool Network::step(Micros limit) {
    // Next event: earliest in-flight delivery or mote wakeup.
    Micros next = -1;
    int wake_mote = -1;
    if (!in_flight_.empty()) next = in_flight_.top().at;
    for (auto& m : motes_) {
        Micros w = m->next_wakeup();
        if (w >= 0 && (next < 0 || w < next)) {
            next = w;
            wake_mote = m->id();
        }
    }
    if (next < 0 || next > limit) {
        now_ = limit;
        return false;
    }
    now_ = std::max(now_, next);
    if (wake_mote >= 0) {
        motes_[static_cast<size_t>(wake_mote)]->wakeup(*this);
        return true;
    }
    InFlight f = in_flight_.top();
    in_flight_.pop();
    ++packets_delivered;
    motes_[static_cast<size_t>(f.packet.dst)]->deliver(*this, f.packet);
    return true;
}

void Network::run_until(Micros t) {
    while (now_ < t) {
        if (!step(t)) break;
    }
}

}  // namespace ceu::wsn
