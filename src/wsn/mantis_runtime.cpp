#include "wsn/mantis_runtime.hpp"

#include <cassert>

namespace ceu::wsn {

MantisThread& MantisKernel::add(std::unique_ptr<MantisThread> t) {
    Tcb tcb;
    tcb.thread = std::move(t);
    threads_.push_back(std::move(tcb));
    return *threads_.back().thread;
}

void MantisKernel::boot(Micros now) {
    last_ = now;
    for (auto& t : threads_) {
        t.state = Tcb::State::Ready;
        t.fresh = true;
    }
    schedule(now);
}

bool MantisKernel::idle() const {
    for (const auto& t : threads_) {
        if (t.state != Tcb::State::Done) return false;
    }
    return true;
}

Micros MantisKernel::next_event() const {
    Micros best = -1;
    auto consider = [&](Micros t) {
        if (t >= 0 && (best < 0 || t < best)) best = t;
    };
    if (running_ >= 0) consider(slice_end_);
    for (const auto& t : threads_) {
        if (t.state == Tcb::State::Sleeping) consider(t.wake_at);
    }
    return best;
}

void MantisKernel::msg_arrival(const Packet& p, Micros now) {
    advance(now);
    // Prefer handing the message straight to a blocked thread (highest
    // priority first); otherwise buffer it.
    int best = -1;
    for (size_t i = 0; i < threads_.size(); ++i) {
        if (threads_[i].state == Tcb::State::Blocked &&
            (best < 0 || threads_[i].thread->priority >
                             threads_[static_cast<size_t>(best)].thread->priority)) {
            best = static_cast<int>(i);
        }
    }
    if (best >= 0) {
        Tcb& t = threads_[static_cast<size_t>(best)];
        t.thread->on_msg(p);
        ++messages_handled;
        t.state = Tcb::State::Ready;
        t.fresh = true;
        // Interrupt-to-ready latency, then the scheduler decides (a
        // higher-priority receiver preempts the running loop).
        schedule(now);
    } else if (msg_queue_.size() < cfg_.msg_queue_capacity) {
        msg_queue_.push_back(p);
    } else {
        ++messages_dropped;
    }
}

void MantisKernel::advance(Micros now) {
    if (now < last_) now = last_;
    // Account the running thread's progress.
    if (running_ >= 0) {
        Tcb& r = threads_[static_cast<size_t>(running_)];
        Micros ran = now - last_;
        r.remaining -= std::min(ran, r.remaining);
    }
    last_ = now;
    // Wake sleepers.
    for (auto& t : threads_) {
        if (t.state == Tcb::State::Sleeping && t.wake_at <= now) {
            t.state = Tcb::State::Ready;
            t.fresh = true;
        }
    }
    // Did the running thread finish its computation?
    if (running_ >= 0) {
        Tcb& r = threads_[static_cast<size_t>(running_)];
        if (r.remaining == 0) {
            r.fresh = true;  // needs resume() for its next action
        }
    }
    schedule(now);
}

int MantisKernel::pick_next(Micros) const {
    int best = -1;
    for (size_t i = 0; i < threads_.size(); ++i) {
        const Tcb& t = threads_[i];
        if (t.state != Tcb::State::Ready && t.state != Tcb::State::Running) continue;
        if (best < 0) {
            best = static_cast<int>(i);
            continue;
        }
        const Tcb& b = threads_[static_cast<size_t>(best)];
        if (t.thread->priority > b.thread->priority ||
            (t.thread->priority == b.thread->priority && t.last_run < b.last_run)) {
            best = static_cast<int>(i);
        }
    }
    return best;
}

void MantisKernel::apply_action(Tcb& t, MantisThread::Action a, Micros now) {
    switch (a.kind) {
        case MantisThread::Action::Kind::Compute:
            t.remaining = a.amount;
            t.state = Tcb::State::Ready;
            break;
        case MantisThread::Action::Kind::Sleep:
            t.state = Tcb::State::Sleeping;
            t.wake_at = now + a.amount + cfg_.wake_latency;
            t.remaining = 0;
            break;
        case MantisThread::Action::Kind::WaitMsg:
            if (!msg_queue_.empty()) {
                Packet p = msg_queue_.front();
                msg_queue_.pop_front();
                t.thread->on_msg(p);
                ++messages_handled;
                t.fresh = true;   // resume again right away
                t.state = Tcb::State::Ready;
            } else {
                t.state = Tcb::State::Blocked;
                t.remaining = 0;
            }
            break;
        case MantisThread::Action::Kind::Exit:
            t.state = Tcb::State::Done;
            t.remaining = 0;
            break;
    }
}

void MantisKernel::schedule(Micros now) {
    // Resolve fresh threads' next actions (may cascade through WaitMsg).
    for (int guard = 0; guard < 1000; ++guard) {
        bool progressed = false;
        for (auto& t : threads_) {
            if ((t.state == Tcb::State::Ready || t.state == Tcb::State::Running) &&
                t.fresh) {
                t.fresh = false;
                apply_action(t, t.thread->resume(*this, now), now);
                progressed = true;
            }
        }
        if (!progressed) break;
    }

    int pick = pick_next(now);
    if (pick < 0) {
        running_ = -1;
        slice_end_ = -1;
        return;
    }
    Tcb& p = threads_[static_cast<size_t>(pick)];
    if (pick != running_) {
        ++context_switches;
        // Model the switch cost as a stretch of the new thread's slice.
        p.remaining += cfg_.ctx_switch;
    }
    if (running_ >= 0 && running_ != pick) {
        Tcb& old = threads_[static_cast<size_t>(running_)];
        if (old.state == Tcb::State::Running) old.state = Tcb::State::Ready;
    }
    running_ = pick;
    p.state = Tcb::State::Running;
    p.last_run = rr_++;
    slice_end_ = now + std::min(cfg_.quantum, p.remaining);
    if (p.remaining == 0) slice_end_ = now + cfg_.quantum;  // degenerate guard
}

}  // namespace ceu::wsn
