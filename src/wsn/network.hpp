// Discrete-event network simulator: advances a virtual clock over packet
// deliveries and mote wakeups. Replaces the paper's physical micaz testbed;
// deterministic by construction so every experiment replays exactly.
#pragma once

#include <memory>
#include <queue>
#include <vector>

#include "wsn/mote.hpp"
#include "wsn/radio.hpp"

namespace ceu::wsn {

class Network {
  public:
    explicit Network(RadioModel radio) : radio_(std::move(radio)) {}

    /// Takes ownership; motes must be added before `start`.
    Mote& add(std::unique_ptr<Mote> mote);

    [[nodiscard]] Micros now() const { return now_; }
    [[nodiscard]] RadioModel& radio() { return radio_; }
    [[nodiscard]] Mote& mote(int id) { return *motes_.at(static_cast<size_t>(id)); }
    [[nodiscard]] size_t mote_count() const { return motes_.size(); }

    /// Transmits a packet from `src`. Returns false if there is no link or
    /// the radio dropped it (loss injection / radio down).
    bool send(int src, int dst, const Packet& p);

    /// Boots all motes (time 0).
    void start();

    /// Runs the simulation until the virtual clock reaches `t` (or nothing
    /// remains scheduled before it).
    void run_until(Micros t);

    /// Runs until `pred()` holds or the clock reaches `deadline`.
    template <typename Pred>
    Micros run_while(Micros deadline, Pred&& pred) {
        while (now_ < deadline && pred()) {
            if (!step(deadline)) break;
        }
        return now_;
    }

    uint64_t packets_sent = 0;
    uint64_t packets_dropped = 0;
    uint64_t packets_delivered = 0;

  private:
    struct InFlight {
        Micros at;
        uint64_t seq;
        Packet packet;
        bool operator>(const InFlight& o) const {
            return at != o.at ? at > o.at : seq > o.seq;
        }
    };

    /// Advances to the next event not later than `limit`; returns false if
    /// there is none.
    bool step(Micros limit);

    RadioModel radio_;
    std::vector<std::unique_ptr<Mote>> motes_;
    std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> in_flight_;
    Micros now_ = 0;
    uint64_t seq_ = 0;
    bool started_ = false;
};

}  // namespace ceu::wsn
