// Discrete-event network simulator: advances a virtual clock over packet
// deliveries and mote wakeups. Replaces the paper's physical micaz testbed;
// deterministic by construction so every experiment replays exactly.
//
// The fault layer (src/fault/) plugs in here: an attached fault::Session
// injects seeded loss/corruption/duplication/jitter into `send`, and its
// scheduled actions (link flaps, partitions, crashes, reboots) become
// events of the discrete-event loop — still fully deterministic, because
// every decision derives from the plan's seed.
#pragma once

#include <memory>
#include <queue>
#include <vector>

#include "fault/session.hpp"
#include "wsn/mote.hpp"
#include "wsn/radio.hpp"

namespace ceu::wsn {

class Network {
  public:
    explicit Network(RadioModel radio) : radio_(std::move(radio)) {}

    /// Takes ownership; motes must be added before `start`.
    Mote& add(std::unique_ptr<Mote> mote);

    /// Attaches a seeded fault plan (replacing any previous one). Call
    /// before `start` so per-mote clock faults apply from boot.
    void inject(fault::FaultPlan plan);
    [[nodiscard]] fault::Session* faults() { return fault_.get(); }

    [[nodiscard]] Micros now() const { return now_; }
    [[nodiscard]] RadioModel& radio() { return radio_; }
    [[nodiscard]] Mote& mote(int id) { return *motes_.at(static_cast<size_t>(id)); }
    [[nodiscard]] size_t mote_count() const { return motes_.size(); }

    /// Transmits a packet from `src`. Returns false if there is no link or
    /// the packet was dropped (radio down, blocked link, loss injection).
    bool send(int src, int dst, const Packet& p);

    /// Boots all motes (time 0).
    void start();

    /// Runs the simulation until the virtual clock reaches `t` (or nothing
    /// remains scheduled before it).
    void run_until(Micros t);

    /// Runs until `pred()` becomes false or the clock reaches `deadline`.
    /// A predicate that is false on entry runs nothing and leaves the
    /// clock untouched; with nothing scheduled the clock jumps to the
    /// deadline.
    template <typename Pred>
    Micros run_while(Micros deadline, Pred&& pred) {
        while (now_ < deadline && pred()) {
            if (!step(deadline)) break;
        }
        return now_;
    }

    uint64_t packets_sent = 0;
    /// Lost in flight: radio/link down, deterministic loss, injected loss,
    /// or addressed to a crashed mote.
    uint64_t packets_dropped = 0;
    /// Never had a link to travel on — a topology/routing failure, kept
    /// separate from `packets_dropped` so soak assertions can tell
    /// topology bugs from injected loss.
    uint64_t packets_unroutable = 0;
    uint64_t packets_delivered = 0;
    uint64_t packets_corrupted = 0;
    uint64_t packets_duplicated = 0;
    uint64_t motes_crashed = 0;
    uint64_t motes_rebooted = 0;

  private:
    struct InFlight {
        Micros at;
        uint64_t seq;
        Packet packet;
        bool operator>(const InFlight& o) const {
            return at != o.at ? at > o.at : seq > o.seq;
        }
    };

    /// Advances to the next event not later than `limit`; returns false if
    /// there is none. Event order at one instant: scheduled faults first,
    /// then deliveries, then mote wakeups — fixed, hence deterministic.
    bool step(Micros limit);

    void apply_fault(const fault::Action& a);

    RadioModel radio_;
    std::vector<std::unique_ptr<Mote>> motes_;
    std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> in_flight_;
    std::unique_ptr<fault::Session> fault_;
    Micros now_ = 0;
    uint64_t seq_ = 0;
    bool started_ = false;
};

}  // namespace ceu::wsn
