// Execution-flow graph (paper §4.1, Figure "nfa"): nodes are flat-program
// instructions, edges are possible control transfers, and rejoin nodes are
// annotated with their (lower-than-normal) priority. Exported to Graphviz
// DOT for the Figure-"nfa" reproduction and used as documentation of the
// temporal-analysis front half.
#pragma once

#include <string>
#include <vector>

#include "codegen/flatten.hpp"

namespace ceu::flow {

struct Node {
    flat::Pc pc = 0;
    std::string label;
    int priority = 0;      // 0 = highest (normal); rejoins get depth-based
    bool is_await = false;
    bool is_rejoin = false;
};

struct Edge {
    int from = 0, to = 0;
    std::string label;  // event name for await->continuation edges
};

struct FlowGraph {
    std::vector<Node> nodes;
    std::vector<Edge> edges;

    [[nodiscard]] std::string to_dot(const std::string& title = "flow") const;

    /// The edge list as an adjacency vector indexed by pc (dataflow passes
    /// iterate successors; the edge list is better for export).
    [[nodiscard]] std::vector<std::vector<int>> successors() const;
};

/// Builds the flow graph of a compiled program.
FlowGraph build_flow_graph(const flat::CompiledProgram& cp);

/// One-line human label for an instruction ("await A", "v = (v + 1)", ...);
/// shared with the DFA exporter so both figures speak the same language.
std::string instr_label(const flat::CompiledProgram& cp, const flat::Instr& i);

}  // namespace ceu::flow
