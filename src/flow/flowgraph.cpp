#include "flow/flowgraph.hpp"

#include <sstream>

#include "ast/print.hpp"

namespace ceu::flow {

using flat::FlatProgram;
using flat::GateInfo;
using flat::Instr;
using flat::IOp;
using flat::Pc;

std::string instr_label(const flat::CompiledProgram& cp, const Instr& i) {
    switch (i.op) {
        case IOp::Eval: return ast::print_expr(*i.e1);
        case IOp::Assign:
            return ast::print_expr(*i.e1) + " = " + ast::print_expr(*i.e2);
        case IOp::AssignWake: return ast::print_expr(*i.e1) + " = <wake>";
        case IOp::AssignSlot: return ast::print_expr(*i.e1) + " = <result>";
        case IOp::IfNot: return "if " + ast::print_expr(*i.e1);
        case IOp::Jump: return "";
        case IOp::AwaitExt:
            return "await " + cp.sema.inputs[static_cast<size_t>(i.a)].name;
        case IOp::AwaitInt:
            return "await " + cp.sema.internals[static_cast<size_t>(i.a)].name;
        case IOp::AwaitTime: return "await " + format_micros(i.us);
        case IOp::AwaitDyn: return "await (" + ast::print_expr(*i.e1) + ")";
        case IOp::AwaitForever: return "await forever";
        case IOp::EmitInt:
            return "emit " + cp.sema.internals[static_cast<size_t>(i.a)].name;
        case IOp::EmitExtAsync:
            return "emit " + cp.sema.inputs[static_cast<size_t>(i.a)].name;
        case IOp::EmitTimeAsync: return "emit " + format_micros(i.us);
        case IOp::ParSpawn: return "par";
        case IOp::BranchEnd: return "rejoin";
        case IOp::KillRegion: return "kill";
        case IOp::Escape: return i.e1 ? "return " + ast::print_expr(*i.e1) : "break";
        case IOp::ProgReturn:
            return i.e1 ? "return " + ast::print_expr(*i.e1) : "return";
        case IOp::AsyncRun: return "async";
        case IOp::AsyncEnd: return "async end";
        case IOp::Halt: return "halt";
        default: return "";
    }
}

FlowGraph build_flow_graph(const flat::CompiledProgram& cp) {
    const FlatProgram& fp = cp.flat;
    FlowGraph g;
    g.nodes.resize(fp.code.size());

    // Rejoin priority: paper convention is 0 = highest, outer rejoins lower.
    // A continuation at construct depth d gets priority (max_depth+1-d), so
    // deeper rejoins carry a smaller number than outer ones... inverted to
    // match the figure where deeper rejoins print a *smaller* value. We
    // print: normal 0, rejoin at depth d -> (max_depth + 1 - d).
    auto rejoin_prio = [&](int depth) { return fp.max_depth + 1 - depth; };

    for (size_t pc = 0; pc < fp.code.size(); ++pc) {
        const Instr& i = fp.code[pc];
        Node& n = g.nodes[pc];
        n.pc = static_cast<Pc>(pc);
        n.label = instr_label(cp, i);
        switch (i.op) {
            case IOp::AwaitExt:
            case IOp::AwaitInt:
            case IOp::AwaitTime:
            case IOp::AwaitDyn:
            case IOp::AwaitForever:
                n.is_await = true;
                break;
            default:
                break;
        }
    }
    for (const auto& par : fp.pars) {
        if (par.cont >= 0) {
            g.nodes[static_cast<size_t>(par.cont)].is_rejoin = true;
            g.nodes[static_cast<size_t>(par.cont)].priority = rejoin_prio(par.prio + 1);
        }
    }
    for (const auto& esc : fp.escapes) {
        if (esc.cont >= 0) {
            g.nodes[static_cast<size_t>(esc.cont)].is_rejoin = true;
            g.nodes[static_cast<size_t>(esc.cont)].priority = rejoin_prio(esc.prio + 1);
        }
    }

    auto edge = [&](Pc a, Pc b, std::string label = "") {
        if (a >= 0 && b >= 0 && static_cast<size_t>(b) < fp.code.size()) {
            g.edges.push_back({a, b, std::move(label)});
        }
    };

    for (size_t pcz = 0; pcz < fp.code.size(); ++pcz) {
        Pc pc = static_cast<Pc>(pcz);
        const Instr& i = fp.code[pcz];
        switch (i.op) {
            case IOp::IfNot:
                edge(pc, pc + 1, "true");
                edge(pc, i.a, "false");
                break;
            case IOp::Jump:
                edge(pc, i.a);
                break;
            case IOp::AwaitExt:
                edge(pc, pc + 1, cp.sema.inputs[static_cast<size_t>(i.a)].name);
                break;
            case IOp::AwaitInt:
                edge(pc, pc + 1, cp.sema.internals[static_cast<size_t>(i.a)].name);
                break;
            case IOp::AwaitTime:
                edge(pc, pc + 1, format_micros(i.us));
                break;
            case IOp::AwaitDyn:
                edge(pc, pc + 1, "(dyn)");
                break;
            case IOp::AwaitForever:
            case IOp::Halt:
            case IOp::ProgReturn:
                break;
            case IOp::ParSpawn: {
                const auto& par = fp.pars[static_cast<size_t>(i.a)];
                for (Pc b : par.branches) edge(pc, b);
                break;
            }
            case IOp::BranchEnd: {
                const auto& par = fp.pars[static_cast<size_t>(i.a)];
                if (par.cont >= 0) edge(pc, par.cont, "rejoin");
                break;
            }
            case IOp::Escape: {
                const auto& esc = fp.escapes[static_cast<size_t>(i.a)];
                edge(pc, esc.cont, "escape");
                break;
            }
            case IOp::AsyncRun: {
                const auto& ai = fp.asyncs[static_cast<size_t>(i.a)];
                edge(pc, ai.begin, "spawn");
                edge(pc, fp.gates[static_cast<size_t>(ai.gate)].cont, "done");
                break;
            }
            case IOp::AsyncEnd:
                break;
            default:
                edge(pc, pc + 1);
                break;
        }
    }
    return g;
}

std::vector<std::vector<int>> FlowGraph::successors() const {
    std::vector<std::vector<int>> succs(nodes.size());
    for (const Edge& e : edges) {
        succs[static_cast<size_t>(e.from)].push_back(e.to);
    }
    return succs;
}

std::string FlowGraph::to_dot(const std::string& title) const {
    std::ostringstream os;
    os << "digraph \"" << title << "\" {\n  rankdir=TB;\n  node [shape=box, "
          "fontname=\"monospace\"];\n";
    for (const Node& n : nodes) {
        os << "  n" << n.pc << " [label=\"" << n.pc;
        if (!n.label.empty()) {
            std::string esc;
            for (char c : n.label) {
                if (c == '"' || c == '\\') esc += '\\';
                esc += c;
            }
            os << ": " << esc;
        }
        if (n.is_rejoin) os << "\\nprio=" << n.priority;
        os << "\"";
        if (n.is_await) os << ", style=rounded";
        if (n.is_rejoin) os << ", style=dashed";
        os << "];\n";
    }
    for (const Edge& e : edges) {
        os << "  n" << e.from << " -> n" << e.to;
        if (!e.label.empty()) os << " [label=\"" << e.label << "\"]";
        os << ";\n";
    }
    os << "}\n";
    return os.str();
}

}  // namespace ceu::flow
