// ceu::host::Instance — the single embedding facade for running a compiled
// Céu program. Every in-tree host (env::Driver, wsn::CeuMote, the ceuc
// script runner, the conformance differ, the demos and examples) routes its
// event injection through this class; rt::Engine stays an internal detail
// with exactly one documented construction path (this one).
//
// The facade bundles what every embedding otherwise re-plumbs by hand:
//   - the standard C bindings (merged under host-supplied extras),
//   - trace-line collection / streaming,
//   - the script vocabulary (boot / inject / advance / settle / crash),
//   - the observability layer: sink registration, the reaction Recorder,
//     and the fused ProcessStats snapshot the bench exporters serialize.
//
// Observation is off by default: the engine's Recorder pointer stays null
// and every hook site is one predicted branch (the <1% overhead budget the
// obs tests assert). Attaching a sink — or calling observe_stats() — arms
// the recorder for the rest of the instance's life.
//
// Backends: an Instance normally wraps an interpreter rt::Engine. When
// Config::aot carries a loaded aot::ProgramHandle, the same facade drives
// the AOT-compiled program instead — one calloc'd C context, reactions
// through the descriptor's entry points, trace/obs/output traffic routed
// back through the ceu_host_api_t vtable into the same trace buffer and
// Recorder. The two backends keep byte-identical traces for the same input
// sequence (the conformance differ's aot-in-reactor oracle asserts this);
// what the compiled backend does NOT support: custom C bindings (extras in
// Config::bindings are rejected), string-valued injections, and engine()
// introspection (it throws — use the backend-neutral accessors).
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "aot/aot.hpp"
#include "codegen/flatten.hpp"
#include "env/script.hpp"
#include "obs/obs.hpp"
#include "runtime/cbind.hpp"
#include "runtime/engine.hpp"

namespace ceu::host {

struct Config {
    /// Scheduling / fault-trap knobs forwarded to the engine.
    rt::EngineOptions engine;
    /// Extra C bindings merged over the standard ones (extras win on
    /// conflicts). Must outlive the Instance. May be null.
    const rt::CBindings* bindings = nullptr;
    /// Keep every trace line in memory (trace()/trace_text()). Turn off for
    /// long-running hosts that only stream via on_trace_line.
    bool collect_trace = true;
    /// Run the AOT-compiled backend: must be a handle for the *same*
    /// compiled program the Instance wraps (fingerprints are checked).
    /// Incompatible with Config::bindings (compiled code has the standard
    /// bindings baked in) — supplying both throws std::invalid_argument.
    aot::ProgramHandle aot;
};

class Instance {
  public:
    /// Wraps an already-compiled program; `cp` must outlive the instance.
    explicit Instance(const flat::CompiledProgram& cp, Config cfg = Config());
    /// Compiles `source` and owns the result. Throws CompileError.
    explicit Instance(const std::string& source, Config cfg = Config());
    /// Shares an immutable compiled program: the fleet path. Booting 100k
    /// instances of one program costs memory proportional to *state*
    /// (slots, gates, queues), not code — the AST/flat code is parsed once
    /// and co-owned by every instance.
    explicit Instance(std::shared_ptr<const flat::CompiledProgram> cp,
                      Config cfg = Config());

    Instance(const Instance&) = delete;
    Instance& operator=(const Instance&) = delete;
    ~Instance();

    // -- lifecycle ------------------------------------------------------------

    /// Boot reaction (go_init). The instance must be freshly constructed,
    /// reset, or power-cycled.
    void boot();
    /// Discards all dynamic program state; wall-clock persists. The engine
    /// returns to Loaded and boot() can run again.
    void reset();
    /// Crash semantics: reset + a "[crash] engine power-cycled" trace line
    /// + boot. What a Script's `crash` item does.
    void power_cycle();

    // -- inputs (the §5 environment side) ------------------------------------

    /// Delivers one occurrence of a named input event. Throws RuntimeError
    /// if the name is not an input of the program. A thin resolve-once
    /// wrapper: hot callers should resolve_input() once and inject by id.
    void inject(const std::string& event, rt::Value v = rt::Value::integer(0));
    /// Like inject(), but unknown names are ignored (returns false) — the
    /// conformance differ's contract, where generated scripts may mention
    /// events a shrunk program no longer declares.
    bool try_inject(const std::string& event, rt::Value v = rt::Value::integer(0));
    /// Delivers by input id (bounds-checked by the engine; out-of-range ids
    /// are discarded exactly like the compiled C's switch default).
    void inject(int event_id, rt::Value v = rt::Value::integer(0));
    /// Interns an input-event name to its dense id (kNoEvent if unknown) —
    /// the string-to-id boundary; everything past it speaks EventId.
    [[nodiscard]] EventId resolve_input(const std::string& event) const;

    /// Advances the virtual wall-clock by `delta` and runs the due timer
    /// reactions (one per expired deadline group, §2.3).
    void advance(Micros delta);
    /// Absolute-time variant; moving backwards is a no-op (clocks don't
    /// rewind).
    void advance_to(Micros abs_us);

    /// One round-robin async slice; true if async work remains.
    bool step_async();
    /// Up to `n` slices in one call (stops early when the program leaves
    /// Running or the async queue drains); true if async work remains.
    /// Semantically n consecutive step_async calls, but a compiled backend
    /// pays one ABI crossing for the whole budget — the reactor's phase-3
    /// loop runs on this.
    bool run_async_slices(uint64_t n);
    /// Runs asyncs until idle (or the slice cap trips — a safety net).
    void settle(uint64_t max_slices = 10'000'000);

    // -- scripts --------------------------------------------------------------

    void feed(const env::ScriptItem& item);
    /// Boot + run the whole script + drain asyncs. Returns final status.
    /// Dynamic errors (rt::RuntimeError) propagate to the caller.
    rt::Engine::Status run(const env::Script& script);
    /// Like run(), but catches rt::RuntimeError into a structured
    /// diagnostic — the CLI's error path.
    rt::Engine::Status run(const env::Script& script, Diagnostics& diags);
    /// run() without the boot: replays `script` against the instance's
    /// *current* state — the continuation path after load() restored a
    /// checkpoint mid-script. The remaining items must be exactly the
    /// suffix the saved run had not yet consumed for traces to line up.
    rt::Engine::Status resume(const env::Script& script);
    rt::Engine::Status resume(const env::Script& script, Diagnostics& diags);

    // -- checkpoint / restore -------------------------------------------------

    /// Serializes the instance at a reaction boundary: engine snapshot
    /// (see Engine::save) + host clock + recorder counters. Collected
    /// trace lines are *not* part of the blob — a checkpoint captures
    /// state, and restore determinism is asserted over the trace produced
    /// *after* the restore point.
    [[nodiscard]] std::vector<uint8_t> save() const;
    /// Restores a blob produced by save() into this instance. The compiled
    /// program must fingerprint-match the saving instance's (same source
    /// compiled in another process qualifies). Throws rt::snap::
    /// SnapshotError on mismatch or corruption, leaving state untouched.
    void load(const std::vector<uint8_t>& blob);

    // -- observability --------------------------------------------------------

    /// Registers a reaction-span sink (not owned; must outlive the
    /// instance) and arms the recorder.
    void add_sink(obs::Sink* sink);
    /// Same, transferring ownership to the instance.
    void own_sink(std::unique_ptr<obs::Sink> sink);
    /// Arms the recorder for counters only (no span materialization) — the
    /// cheap always-on profile the bench exporters use.
    void observe_stats();
    /// Process-level counters: the recorder's aggregation fused with the
    /// engine's own lifetime gauges (reactions, instructions, queue peak),
    /// so the engine-derived fields are correct even when observation was
    /// armed late or never. Span-derived fields (wakes, emits, by-kind
    /// splits) cover only the observed window.
    [[nodiscard]] obs::ProcessStats snapshot() const;
    /// Flushes every sink (closes the Chrome-trace JSON array). Idempotent.
    void finish_observation();
    [[nodiscard]] obs::Recorder& recorder() { return recorder_; }
    /// Fault-layer integration: harnesses report each injected fault here
    /// so it lands in the stats snapshot.
    void note_fault_injection() { recorder_.count_fault_injection(); }

    // -- embedder sinks -------------------------------------------------------
    //
    // The subscription surface for non-CLI embedders (the serve layer's
    // contract): everything a remote client may want streamed — output
    // lines, reaction spans, status transitions — is a callback registered
    // here, so embedders never reach into env::Driver or rt::Engine
    // internals. Sinks are invoked synchronously on the thread driving the
    // instance (inside the reactor: the owning shard's worker), in
    // registration order; keep them cheap and do not re-enter the instance
    // from inside one. All three surfaces are backend-neutral: interpreter
    // and AOT instances feed them identically.

    /// Receives every output/trace line, in emission order — the same
    /// stream trace() collects and on_trace_line sees. Registration does
    /// not affect collection (Config::collect_trace governs that).
    using OutputSink = std::function<void(const std::string&)>;
    void add_output_sink(OutputSink sink);

    /// Receives every finished reaction span. Registering arms the
    /// recorder (same cost model as add_sink: ~zero until armed).
    using SpanSink = std::function<void(const obs::ReactionSpan&)>;
    void add_span_sink(SpanSink sink);

    /// Receives status *transitions*: after any mutating entry point
    /// (boot / inject / advance / async slices / load / reset) leaves the
    /// instance in a different Status than previously notified, each sink
    /// is called once with the new status. The sink is primed with the
    /// current status at registration, so subscribers always know the
    /// starting state. No sinks registered → zero per-call overhead.
    using StatusSink = std::function<void(rt::Engine::Status)>;
    void add_status_sink(StatusSink sink);

    // -- traces ---------------------------------------------------------------

    /// Streaming hook: called once per trace line, in addition to (not
    /// instead of) collection. Settable at any time. Prefer
    /// add_output_sink for new embedders (it composes; this overwrites).
    std::function<void(const std::string&)> on_trace_line;
    [[nodiscard]] const std::vector<std::string>& trace() const { return trace_; }
    [[nodiscard]] std::string trace_text() const;
    /// Appends a host-authored annotation line to the trace stream — the
    /// backend-neutral replacement for engine().trace(); the reactor's
    /// supervisor lines ("[supervisor] rebooted ...") come through here.
    void note(const std::string& line);

    // -- introspection (tests, benches; do not inject events through this) ----

    /// Interpreter backend only: a compiled (AOT) instance has no engine
    /// and throws std::logic_error. Fleet-layer code uses the backend-
    /// neutral accessors below instead.
    [[nodiscard]] rt::Engine& engine() {
        if (engine_ == nullptr) {
            throw std::logic_error("compiled (AOT) instance has no interpreter engine");
        }
        return *engine_;
    }
    [[nodiscard]] const rt::Engine& engine() const {
        if (engine_ == nullptr) {
            throw std::logic_error("compiled (AOT) instance has no interpreter engine");
        }
        return *engine_;
    }
    [[nodiscard]] rt::Engine::Status status() const;
    [[nodiscard]] rt::Value result() const;
    [[nodiscard]] Micros clock() const { return clock_; }
    [[nodiscard]] const flat::CompiledProgram& program() const { return *cp_; }

    // Backend-neutral runtime gauges (what after_reaction needs).
    [[nodiscard]] bool is_compiled() const { return engine_ == nullptr; }
    /// Latest wall-clock instant the backend has seen (engine `now`).
    [[nodiscard]] Micros now() const;
    /// Lifetime reaction count (checkpoint cadence is keyed on this).
    [[nodiscard]] uint64_t reactions() const;
    /// Earliest armed timer deadline, -1 when none.
    [[nodiscard]] Micros next_timer_deadline() const;
    [[nodiscard]] bool has_async_work() const;
    /// Exact bytes of per-instance runtime state: the interpreter's RAM
    /// model (slots, gates, containers at current capacity) or the
    /// compiled backend's context size. The bench derives
    /// bytes_per_instance from this instead of boot RSS deltas, which
    /// swung ~1.7 KB with allocator caching across worker counts.
    [[nodiscard]] size_t state_bytes() const;

    /// Toggles the per-reaction steady-clock sampling behind wall_ns (on
    /// by default; see obs::Recorder::set_timing_enabled). Fleets turn it
    /// off: two clock_gettime calls per reaction are pure overhead when
    /// only deterministic counters are wanted.
    void set_reaction_timing(bool on) { recorder_.set_timing_enabled(on); }

  private:
    void init(Config& cfg);
    void arm_recorder();
    /// Fans a status change out to status sinks (no-op without sinks).
    void notify_status();
    rt::Engine::Status replay(const env::Script& script);
    [[nodiscard]] rt::Engine::Status aot_status() const;
    void push_trace_line(std::string line);

    // ceu_host_api_t callbacks (user == the owning Instance).
    static void aot_trace_cb(void* user, const char* line, int32_t len);
    static void aot_obs_begin_cb(void* user, int32_t kind, int32_t id,
                                 const char* name, int64_t ts);
    static void aot_obs_wake_cb(void* user, int32_t gate);
    static void aot_obs_emit_cb(void* user, int32_t event_id, int32_t depth);
    static void aot_obs_timer_cb(void* user, int32_t gate, int64_t residual);
    static void aot_obs_end_cb(void* user, int32_t status, int64_t result);
    static void aot_output_cb(void* user, int32_t output_id, const char* name,
                              int64_t value);

    std::unique_ptr<flat::CompiledProgram> owned_cp_;  // set by the source ctor
    std::shared_ptr<const flat::CompiledProgram> shared_cp_;  // fleet ctor
    const flat::CompiledProgram* cp_ = nullptr;
    /// Only populated when the host supplied extra bindings; instances on
    /// the pure standard set share one process-wide immutable copy.
    std::unique_ptr<rt::CBindings> bindings_;
    std::unique_ptr<rt::Engine> engine_;
    /// AOT backend (engine_ stays null): the pinned program handle, the
    /// calloc'd C context, and the callback vtable the context holds a
    /// pointer into (so the Instance must not move — it doesn't; it is
    /// non-copyable and reactor slots hold it by unique_ptr).
    aot::ProgramHandle aot_;
    void* ctx_ = nullptr;
    ceu_host_api_t host_api_{};
    bool obs_armed_ = false;
    obs::Recorder recorder_;
    std::vector<std::unique_ptr<obs::Sink>> owned_sinks_;
    std::vector<OutputSink> output_sinks_;
    std::vector<StatusSink> status_sinks_;
    rt::Engine::Status notified_status_ = rt::Engine::Status::Loaded;
    std::vector<std::string> trace_;
    bool collect_trace_ = true;
    Micros clock_ = 0;
};

}  // namespace ceu::host
