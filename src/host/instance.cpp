#include "host/instance.hpp"

#include <algorithm>
#include <cstring>

#include "env/bindings.hpp"
#include "runtime/snapshot.hpp"

namespace ceu::host {

using rt::Engine;
using rt::Value;

namespace {
/// The process-wide immutable standard binding set. Engines only read
/// bindings (per-engine binding state lives on the engine), so every
/// instance without host extras shares this one copy — a fleet of 100k
/// instances builds the standard set once, not 100k times.
const rt::CBindings& shared_standard_bindings() {
    static const rt::CBindings standard = env::make_standard_bindings();
    return standard;
}
}  // namespace

Instance::Instance(const flat::CompiledProgram& cp, Config cfg) : cp_(&cp) {
    init(cfg);
}

Instance::Instance(const std::string& source, Config cfg)
    : owned_cp_(std::make_unique<flat::CompiledProgram>(flat::compile(source))),
      cp_(owned_cp_.get()) {
    init(cfg);
}

Instance::Instance(std::shared_ptr<const flat::CompiledProgram> cp, Config cfg)
    : shared_cp_(std::move(cp)), cp_(shared_cp_.get()) {
    init(cfg);
}

void Instance::init(Config& cfg) {
    collect_trace_ = cfg.collect_trace;
    const rt::CBindings* effective = &shared_standard_bindings();
    if (cfg.bindings != nullptr) {
        bindings_ = std::make_unique<rt::CBindings>(env::make_standard_bindings());
        bindings_->merge(*cfg.bindings);
        effective = bindings_.get();
    }
    engine_ = std::make_unique<Engine>(*cp_, *effective, cfg.engine);
    engine_->on_trace = [this](const std::string& line) {
        if (collect_trace_) trace_.push_back(line);
        if (on_trace_line) on_trace_line(line);
    };
}

// -- lifecycle ----------------------------------------------------------------

void Instance::boot() {
    // If the host clock moved before boot (advance()/advance_to() on a
    // not-yet-booted instance — the fleet late-joiner path), the boot
    // reaction happens at that instant, not at the epoch.
    engine_->set_boot_clock(clock_);
    engine_->go_init();
}

void Instance::reset() { engine_->reset(); }

void Instance::power_cycle() {
    // Power-cycle: all program state is lost; the wall-clock persists
    // (reset keeps `now`, so the reboot reaction and any timers it arms
    // are stamped with the current instant).
    engine_->reset();
    engine_->trace("[crash] engine power-cycled");
    engine_->go_init();
}

// -- inputs -------------------------------------------------------------------

void Instance::inject(const std::string& event, Value v) {
    if (!engine_->go_event_by_name(event, v)) {
        throw rt::RuntimeError({}, "unknown input event '" + event + "'");
    }
}

bool Instance::try_inject(const std::string& event, Value v) {
    return engine_->go_event_by_name(event, v);
}

void Instance::inject(int event_id, Value v) { engine_->go_event(event_id, v); }

EventId Instance::resolve_input(const std::string& event) const {
    return cp_->sema.input_id(event);
}

void Instance::advance(Micros delta) {
    // `delta` is measured from the engine's current instant, which may be
    // ahead of our accumulator when asyncs advanced time via `emit <time>`.
    // This matches the compiled harness (`ceu_go_time(ceu_now + v)`), so
    // interpreter and cgen traces stay byte-compatible.
    clock_ = std::max(clock_, engine_->now()) + delta;
    engine_->go_time(clock_);
}

void Instance::advance_to(Micros abs_us) {
    clock_ = std::max(clock_, abs_us);
    engine_->go_time(clock_);
}

bool Instance::step_async() { return engine_->go_async(); }

void Instance::settle(uint64_t max_slices) {
    uint64_t n = 0;
    while (engine_->status() == Engine::Status::Running && engine_->has_async_work()) {
        if (!engine_->go_async()) break;
        if (++n >= max_slices) {
            throw rt::RuntimeError({}, "async work did not settle within the slice cap");
        }
    }
    // The virtual clock may have advanced via `emit <time>` inside asyncs.
    clock_ = std::max(clock_, engine_->now());
}

// -- scripts ------------------------------------------------------------------

void Instance::feed(const env::ScriptItem& item) {
    using Kind = env::ScriptItem::Kind;
    switch (item.kind) {
        case Kind::Event:
            // Pending input has priority over asyncs; deliver directly.
            if (!try_inject(item.event, item.value)) {
                throw rt::RuntimeError({}, "script refers to unknown input event '" +
                                               item.event + "'");
            }
            break;
        case Kind::Advance:
            advance(item.us);
            break;
        case Kind::AsyncIdle:
            settle();
            break;
        case Kind::Crash:
            power_cycle();
            break;
    }
}

Engine::Status Instance::run(const env::Script& script) {
    boot();
    return replay(script);
}

Engine::Status Instance::resume(const env::Script& script) { return replay(script); }

Engine::Status Instance::replay(const env::Script& script) {
    // Resolve event names to interned ids once, up front: replay then
    // delivers by dense EventId and the string spelling never reaches the
    // reaction path. Unknown names still only fault when (and if) their
    // item is actually reached, matching the per-item feed() semantics.
    const std::vector<env::ScriptItem>& items = script.items();
    std::vector<EventId> ids(items.size(), kNoEvent);
    for (size_t i = 0; i < items.size(); ++i) {
        if (items[i].kind == env::ScriptItem::Kind::Event) {
            ids[i] = resolve_input(items[i].event);
        }
    }
    for (size_t i = 0; i < items.size(); ++i) {
        const env::ScriptItem& item = items[i];
        if (engine_->status() != Engine::Status::Running &&
            item.kind != env::ScriptItem::Kind::Crash) {
            break;
        }
        if (item.kind == env::ScriptItem::Kind::Event) {
            if (ids[i] == kNoEvent) {
                throw rt::RuntimeError({}, "script refers to unknown input event '" +
                                               item.event + "'");
            }
            engine_->go_event(ids[i], item.value);
        } else {
            feed(item);
        }
    }
    if (engine_->status() == Engine::Status::Running) settle();
    return engine_->status();
}

Engine::Status Instance::run(const env::Script& script, Diagnostics& diags) {
    try {
        return run(script);
    } catch (const rt::RuntimeError& e) {
        diags.error(e.loc(), e.message());
        return engine_->status();
    }
}

Engine::Status Instance::resume(const env::Script& script, Diagnostics& diags) {
    try {
        return resume(script);
    } catch (const rt::RuntimeError& e) {
        diags.error(e.loc(), e.message());
        return engine_->status();
    }
}

// -- checkpoint / restore -----------------------------------------------------

namespace {
constexpr char kHostMagic[8] = {'C', 'E', 'U', 'H', 'S', 'T', '0', '1'};

void write_stats(rt::snap::ByteWriter& w, const obs::ProcessStats& s) {
    w.u64(s.reactions);
    for (uint64_t k : s.reactions_by_kind) w.u64(k);
    w.u64(s.wakes);
    w.u64(s.emits);
    w.u64(s.timer_fires);
    w.u64(s.instructions);
    w.u64(s.max_reaction_instructions);
    w.u64(s.allocations);
    w.i64(s.max_emit_depth);
    w.u64(s.wall_ns);
    w.u64(s.max_reaction_wall_ns);
    w.u64(s.queue_peak);
    w.u64(s.timers_peak);
    w.u64(s.faults);
    w.u64(s.fault_injections);
    w.u64(s.terminations);
    w.u64(s.checkpoints);
    w.u64(s.restores);
    w.u64(s.supervised_restarts);
    w.u64(s.quarantines);
    w.u64(s.sheds);
}

obs::ProcessStats read_stats(rt::snap::ByteReader& r) {
    obs::ProcessStats s;
    s.reactions = r.u64();
    for (uint64_t& k : s.reactions_by_kind) k = r.u64();
    s.wakes = r.u64();
    s.emits = r.u64();
    s.timer_fires = r.u64();
    s.instructions = r.u64();
    s.max_reaction_instructions = r.u64();
    s.allocations = r.u64();
    s.max_emit_depth = static_cast<int>(r.i64());
    s.wall_ns = r.u64();
    s.max_reaction_wall_ns = r.u64();
    s.queue_peak = static_cast<size_t>(r.u64());
    s.timers_peak = static_cast<size_t>(r.u64());
    s.faults = r.u64();
    s.fault_injections = r.u64();
    s.terminations = r.u64();
    s.checkpoints = r.u64();
    s.restores = r.u64();
    s.supervised_restarts = r.u64();
    s.quarantines = r.u64();
    s.sheds = r.u64();
    return s;
}
}  // namespace

std::vector<uint8_t> Instance::save() const {
    std::vector<uint8_t> out;
    rt::snap::ByteWriter w(out);
    w.bytes(reinterpret_cast<const uint8_t*>(kHostMagic), sizeof kHostMagic);
    w.i64(clock_);
    // Length-prefixed engine blob so the host layer can add fields after
    // it without version-coupling to the engine format.
    std::vector<uint8_t> eng;
    engine_->save(eng);
    w.u32(static_cast<uint32_t>(eng.size()));
    w.bytes(eng.data(), eng.size());
    w.u64(recorder_.seq());
    write_stats(w, recorder_.stats());
    return out;
}

void Instance::load(const std::vector<uint8_t>& blob) {
    rt::snap::ByteReader r(blob.data(), blob.size());
    uint8_t magic[sizeof kHostMagic];
    for (uint8_t& b : magic) b = r.u8();
    if (std::memcmp(magic, kHostMagic, sizeof kHostMagic) != 0) {
        throw rt::snap::SnapshotError("bad magic (not a CEUHST01 instance snapshot)");
    }
    Micros clock = r.i64();
    uint32_t eng_len = r.count(1);
    if (r.remaining() < eng_len) {
        throw rt::snap::SnapshotError("truncated engine blob");
    }
    const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(blob.size() - r.remaining());
    std::vector<uint8_t> eng(blob.begin() + off,
                             blob.begin() + off + static_cast<std::ptrdiff_t>(eng_len));
    // Skip over the engine bytes in the outer reader, then parse the tail
    // *before* mutating anything: Engine::load commits atomically, and the
    // recorder must only be touched if the whole blob validates.
    for (uint32_t i = 0; i < eng_len; ++i) (void)r.u8();
    uint64_t rec_seq = r.u64();
    obs::ProcessStats stats = read_stats(r);
    if (!r.done()) {
        throw rt::snap::SnapshotError("trailing bytes after instance state");
    }

    engine_->load(eng.data(), eng.size());
    clock_ = clock;
    recorder_.restore(stats, rec_seq);
}

// -- observability ------------------------------------------------------------

void Instance::arm_recorder() { engine_->set_recorder(&recorder_); }

void Instance::add_sink(obs::Sink* sink) {
    recorder_.add_sink(sink);
    recorder_.set_spans_enabled(true);
    arm_recorder();
}

void Instance::own_sink(std::unique_ptr<obs::Sink> sink) {
    add_sink(sink.get());
    owned_sinks_.push_back(std::move(sink));
}

void Instance::observe_stats() {
    if (engine_->recorder() == nullptr) {
        recorder_.set_spans_enabled(recorder_.has_sinks());
        arm_recorder();
    }
}

obs::ProcessStats Instance::snapshot() const {
    obs::ProcessStats s = recorder_.stats();
    // Engine-lifetime gauges beat the recorder's (possibly late-armed)
    // window for the fields the engine tracks unconditionally.
    s.reactions = std::max<uint64_t>(s.reactions, engine_->reactions());
    s.instructions = std::max<uint64_t>(s.instructions, engine_->instructions_executed());
    s.max_reaction_instructions = std::max<uint64_t>(s.max_reaction_instructions,
                                                     engine_->max_reaction_instructions());
    s.queue_peak = std::max(s.queue_peak, engine_->queue_peak());
    s.timers_peak = std::max(s.timers_peak, engine_->pending_timers());
    return s;
}

void Instance::finish_observation() { recorder_.finish(); }

// -- traces -------------------------------------------------------------------

std::string Instance::trace_text() const {
    std::string out;
    for (const auto& line : trace_) {
        out += line;
        out += '\n';
    }
    return out;
}

}  // namespace ceu::host
