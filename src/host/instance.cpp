#include "host/instance.hpp"

#include <algorithm>

#include "env/bindings.hpp"

namespace ceu::host {

using rt::Engine;
using rt::Value;

Instance::Instance(const flat::CompiledProgram& cp, Config cfg) : cp_(&cp) {
    init(cfg);
}

Instance::Instance(const std::string& source, Config cfg)
    : owned_cp_(std::make_unique<flat::CompiledProgram>(flat::compile(source))),
      cp_(owned_cp_.get()) {
    init(cfg);
}

void Instance::init(Config& cfg) {
    collect_trace_ = cfg.collect_trace;
    bindings_ = env::make_standard_bindings();
    if (cfg.bindings != nullptr) bindings_.merge(*cfg.bindings);
    engine_ = std::make_unique<Engine>(*cp_, bindings_, cfg.engine);
    engine_->on_trace = [this](const std::string& line) {
        if (collect_trace_) trace_.push_back(line);
        if (on_trace_line) on_trace_line(line);
    };
}

// -- lifecycle ----------------------------------------------------------------

void Instance::boot() { engine_->go_init(); }

void Instance::reset() { engine_->reset(); }

void Instance::power_cycle() {
    // Power-cycle: all program state is lost; the wall-clock persists
    // (reset keeps `now`, so the reboot reaction and any timers it arms
    // are stamped with the current instant).
    engine_->reset();
    engine_->trace("[crash] engine power-cycled");
    engine_->go_init();
}

// -- inputs -------------------------------------------------------------------

void Instance::inject(const std::string& event, Value v) {
    if (!engine_->go_event_by_name(event, v)) {
        throw rt::RuntimeError({}, "unknown input event '" + event + "'");
    }
}

bool Instance::try_inject(const std::string& event, Value v) {
    return engine_->go_event_by_name(event, v);
}

void Instance::inject(int event_id, Value v) { engine_->go_event(event_id, v); }

void Instance::advance(Micros delta) {
    // `delta` is measured from the engine's current instant, which may be
    // ahead of our accumulator when asyncs advanced time via `emit <time>`.
    // This matches the compiled harness (`ceu_go_time(ceu_now + v)`), so
    // interpreter and cgen traces stay byte-compatible.
    clock_ = std::max(clock_, engine_->now()) + delta;
    engine_->go_time(clock_);
}

void Instance::advance_to(Micros abs_us) {
    clock_ = std::max(clock_, abs_us);
    engine_->go_time(clock_);
}

bool Instance::step_async() { return engine_->go_async(); }

void Instance::settle(uint64_t max_slices) {
    uint64_t n = 0;
    while (engine_->status() == Engine::Status::Running && engine_->has_async_work()) {
        if (!engine_->go_async()) break;
        if (++n >= max_slices) {
            throw rt::RuntimeError({}, "async work did not settle within the slice cap");
        }
    }
    // The virtual clock may have advanced via `emit <time>` inside asyncs.
    clock_ = std::max(clock_, engine_->now());
}

// -- scripts ------------------------------------------------------------------

void Instance::feed(const env::ScriptItem& item) {
    using Kind = env::ScriptItem::Kind;
    switch (item.kind) {
        case Kind::Event:
            // Pending input has priority over asyncs; deliver directly.
            if (!try_inject(item.event, item.value)) {
                throw rt::RuntimeError({}, "script refers to unknown input event '" +
                                               item.event + "'");
            }
            break;
        case Kind::Advance:
            advance(item.us);
            break;
        case Kind::AsyncIdle:
            settle();
            break;
        case Kind::Crash:
            power_cycle();
            break;
    }
}

Engine::Status Instance::run(const env::Script& script) {
    boot();
    for (const env::ScriptItem& item : script.items()) {
        if (engine_->status() != Engine::Status::Running &&
            item.kind != env::ScriptItem::Kind::Crash) {
            break;
        }
        feed(item);
    }
    if (engine_->status() == Engine::Status::Running) settle();
    return engine_->status();
}

Engine::Status Instance::run(const env::Script& script, Diagnostics& diags) {
    try {
        return run(script);
    } catch (const rt::RuntimeError& e) {
        diags.error(e.loc(), e.message());
        return engine_->status();
    }
}

// -- observability ------------------------------------------------------------

void Instance::arm_recorder() { engine_->set_recorder(&recorder_); }

void Instance::add_sink(obs::Sink* sink) {
    recorder_.add_sink(sink);
    recorder_.set_spans_enabled(true);
    arm_recorder();
}

void Instance::own_sink(std::unique_ptr<obs::Sink> sink) {
    add_sink(sink.get());
    owned_sinks_.push_back(std::move(sink));
}

void Instance::observe_stats() {
    if (engine_->recorder() == nullptr) {
        recorder_.set_spans_enabled(recorder_.has_sinks());
        arm_recorder();
    }
}

obs::ProcessStats Instance::snapshot() const {
    obs::ProcessStats s = recorder_.stats();
    // Engine-lifetime gauges beat the recorder's (possibly late-armed)
    // window for the fields the engine tracks unconditionally.
    s.reactions = std::max<uint64_t>(s.reactions, engine_->reactions());
    s.instructions = std::max<uint64_t>(s.instructions, engine_->instructions_executed());
    s.max_reaction_instructions = std::max<uint64_t>(s.max_reaction_instructions,
                                                     engine_->max_reaction_instructions());
    s.queue_peak = std::max(s.queue_peak, engine_->queue_peak());
    s.timers_peak = std::max(s.timers_peak, engine_->pending_timers());
    return s;
}

void Instance::finish_observation() { recorder_.finish(); }

// -- traces -------------------------------------------------------------------

std::string Instance::trace_text() const {
    std::string out;
    for (const auto& line : trace_) {
        out += line;
        out += '\n';
    }
    return out;
}

}  // namespace ceu::host
