#include "host/instance.hpp"

#include <algorithm>
#include <cstring>

#include "env/bindings.hpp"
#include "runtime/snapshot.hpp"

namespace ceu::host {

using rt::Engine;
using rt::Value;

namespace {
/// The process-wide immutable standard binding set. Engines only read
/// bindings (per-engine binding state lives on the engine), so every
/// instance without host extras shares this one copy — a fleet of 100k
/// instances builds the standard set once, not 100k times.
const rt::CBindings& shared_standard_bindings() {
    static const rt::CBindings standard = env::make_standard_bindings();
    return standard;
}
}  // namespace

Instance::Instance(const flat::CompiledProgram& cp, Config cfg) : cp_(&cp) {
    init(cfg);
}

Instance::Instance(const std::string& source, Config cfg)
    : owned_cp_(std::make_unique<flat::CompiledProgram>(flat::compile(source))),
      cp_(owned_cp_.get()) {
    init(cfg);
}

Instance::Instance(std::shared_ptr<const flat::CompiledProgram> cp, Config cfg)
    : shared_cp_(std::move(cp)), cp_(shared_cp_.get()) {
    init(cfg);
}

void Instance::init(Config& cfg) {
    collect_trace_ = cfg.collect_trace;
    if (cfg.aot) {
        if (cfg.bindings != nullptr) {
            throw std::invalid_argument(
                "compiled (AOT) instances cannot take extra C bindings");
        }
        if (cfg.aot.desc->fingerprint != rt::program_fingerprint(*cp_)) {
            throw std::invalid_argument(
                "AOT handle was compiled from a different program "
                "(fingerprint mismatch)");
        }
        aot_ = cfg.aot;
        host_api_.user = this;
        host_api_.trace_line = &Instance::aot_trace_cb;
        host_api_.obs_begin = &Instance::aot_obs_begin_cb;
        host_api_.obs_wake = &Instance::aot_obs_wake_cb;
        host_api_.obs_emit = &Instance::aot_obs_emit_cb;
        host_api_.obs_timer = &Instance::aot_obs_timer_cb;
        host_api_.obs_end = &Instance::aot_obs_end_cb;
        host_api_.output = &Instance::aot_output_cb;
        ctx_ = aot_.desc->create(&host_api_);
        if (ctx_ == nullptr) {
            throw std::runtime_error("AOT context allocation failed");
        }
        return;
    }
    const rt::CBindings* effective = &shared_standard_bindings();
    if (cfg.bindings != nullptr) {
        bindings_ = std::make_unique<rt::CBindings>(env::make_standard_bindings());
        bindings_->merge(*cfg.bindings);
        effective = bindings_.get();
    }
    engine_ = std::make_unique<Engine>(*cp_, *effective, cfg.engine);
    // Both backends funnel through push_trace_line, so output sinks see an
    // identical stream regardless of backend.
    engine_->on_trace = [this](const std::string& line) { push_trace_line(line); };
}

Instance::~Instance() {
    if (ctx_ != nullptr) aot_.desc->destroy(ctx_);
}

// -- AOT host-api callbacks ---------------------------------------------------

void Instance::push_trace_line(std::string line) {
    // Collect, then stream: the hook and the sinks see the line after it
    // is (optionally) in the buffer, so a sink may inspect trace().
    if (collect_trace_) trace_.push_back(line);
    if (on_trace_line) on_trace_line(line);
    for (const OutputSink& sink : output_sinks_) sink(line);
}

void Instance::aot_trace_cb(void* user, const char* line, int32_t len) {
    static_cast<Instance*>(user)->push_trace_line(
        std::string(line, len > 0 ? static_cast<size_t>(len) : 0));
}

void Instance::aot_obs_begin_cb(void* user, int32_t kind, int32_t id,
                                const char* name, int64_t ts) {
    auto* self = static_cast<Instance*>(user);
    if (!self->obs_armed_) return;
    self->recorder_.begin(static_cast<obs::ReactionKind>(kind), id,
                          name != nullptr ? name : "", ts);
}

void Instance::aot_obs_wake_cb(void* user, int32_t gate) {
    auto* self = static_cast<Instance*>(user);
    if (self->obs_armed_) self->recorder_.wake(gate);
}

void Instance::aot_obs_emit_cb(void* user, int32_t event_id, int32_t depth) {
    auto* self = static_cast<Instance*>(user);
    if (self->obs_armed_) self->recorder_.emit(event_id, depth);
}

void Instance::aot_obs_timer_cb(void* user, int32_t gate, int64_t residual) {
    auto* self = static_cast<Instance*>(user);
    if (self->obs_armed_) self->recorder_.timer_fire(gate, residual);
}

void Instance::aot_obs_end_cb(void* user, int32_t status, int64_t result) {
    auto* self = static_cast<Instance*>(user);
    if (self->obs_armed_) self->recorder_.end(status, result, 0);
}

void Instance::aot_output_cb(void* user, int32_t output_id, const char* name,
                             int64_t value) {
    // Unhandled-output parity with the interpreter (EmitOutput): outputs
    // become trace lines. Custom OutputFn bindings are an interpreter-only
    // feature.
    (void)output_id;
    static_cast<Instance*>(user)->push_trace_line(
        "output " + std::string(name != nullptr ? name : "?") + " = " +
        std::to_string(value));
}

rt::Engine::Status Instance::aot_status() const {
    switch (aot_.desc->status(ctx_)) {
        case 0: return Engine::Status::Loaded;
        case 1: return Engine::Status::Running;
        case 2: return Engine::Status::Terminated;
        default: return Engine::Status::Faulted;
    }
}

// -- lifecycle ----------------------------------------------------------------

void Instance::boot() {
    // If the host clock moved before boot (advance()/advance_to() on a
    // not-yet-booted instance — the fleet late-joiner path), the boot
    // reaction happens at that instant, not at the epoch.
    if (is_compiled()) {
        aot_.desc->set_boot_clock(ctx_, clock_);
        aot_.desc->go_init(ctx_);
    } else {
        engine_->set_boot_clock(clock_);
        engine_->go_init();
    }
    notify_status();
}

void Instance::reset() {
    if (is_compiled()) {
        aot_.desc->reset(ctx_);
    } else {
        engine_->reset();
    }
    notify_status();
}

void Instance::power_cycle() {
    // Power-cycle: all program state is lost; the wall-clock persists
    // (reset keeps `now`, so the reboot reaction and any timers it arms
    // are stamped with the current instant).
    reset();
    note("[crash] engine power-cycled");
    if (is_compiled()) {
        aot_.desc->go_init(ctx_);
    } else {
        engine_->go_init();
    }
    notify_status();
}

// -- inputs -------------------------------------------------------------------

void Instance::inject(const std::string& event, Value v) {
    if (!try_inject(event, v)) {
        throw rt::RuntimeError({}, "unknown input event '" + event + "'");
    }
}

bool Instance::try_inject(const std::string& event, Value v) {
    if (is_compiled()) {
        EventId id = resolve_input(event);
        if (id == kNoEvent) return false;
        inject(static_cast<int>(id), v);
        return true;
    }
    bool known = engine_->go_event_by_name(event, v);
    if (known) notify_status();
    return known;
}

void Instance::inject(int event_id, Value v) {
    if (is_compiled()) {
        aot_.desc->go_event(ctx_, event_id, v.as_int());
    } else {
        engine_->go_event(event_id, v);
    }
    notify_status();
}

EventId Instance::resolve_input(const std::string& event) const {
    return cp_->sema.input_id(event);
}

void Instance::advance(Micros delta) {
    // `delta` is measured from the engine's current instant, which may be
    // ahead of our accumulator when asyncs advanced time via `emit <time>`.
    // This matches the compiled harness (`ceu_go_time(ceu_now + v)`), so
    // interpreter and cgen traces stay byte-compatible.
    clock_ = std::max(clock_, now()) + delta;
    if (is_compiled()) {
        aot_.desc->go_time(ctx_, clock_);
    } else {
        engine_->go_time(clock_);
    }
    notify_status();
}

void Instance::advance_to(Micros abs_us) {
    clock_ = std::max(clock_, abs_us);
    if (is_compiled()) {
        aot_.desc->go_time(ctx_, clock_);
    } else {
        engine_->go_time(clock_);
    }
    notify_status();
}

bool Instance::step_async() {
    bool more = is_compiled() ? aot_.desc->go_async(ctx_) != 0 : engine_->go_async();
    notify_status();
    return more;
}

bool Instance::run_async_slices(uint64_t n) {
    bool more;
    if (is_compiled()) {
        more = aot_.desc->go_async_n(ctx_, static_cast<int64_t>(n)) != 0;
    } else {
        more = false;
        for (uint64_t k = 0; k < n; ++k) {
            more = engine_->go_async();
            if (!more) break;
        }
    }
    notify_status();
    return more;
}

void Instance::settle(uint64_t max_slices) {
    uint64_t n = 0;
    while (status() == Engine::Status::Running && has_async_work()) {
        if (!step_async()) break;
        if (++n >= max_slices) {
            throw rt::RuntimeError({}, "async work did not settle within the slice cap");
        }
    }
    // The virtual clock may have advanced via `emit <time>` inside asyncs.
    clock_ = std::max(clock_, now());
}

// -- scripts ------------------------------------------------------------------

void Instance::feed(const env::ScriptItem& item) {
    using Kind = env::ScriptItem::Kind;
    switch (item.kind) {
        case Kind::Event:
            // Pending input has priority over asyncs; deliver directly.
            if (!try_inject(item.event, item.value)) {
                throw rt::RuntimeError({}, "script refers to unknown input event '" +
                                               item.event + "'");
            }
            break;
        case Kind::Advance:
            advance(item.us);
            break;
        case Kind::AsyncIdle:
            settle();
            break;
        case Kind::Crash:
            power_cycle();
            break;
    }
}

Engine::Status Instance::run(const env::Script& script) {
    boot();
    return replay(script);
}

Engine::Status Instance::resume(const env::Script& script) { return replay(script); }

Engine::Status Instance::replay(const env::Script& script) {
    // Resolve event names to interned ids once, up front: replay then
    // delivers by dense EventId and the string spelling never reaches the
    // reaction path. Unknown names still only fault when (and if) their
    // item is actually reached, matching the per-item feed() semantics.
    const std::vector<env::ScriptItem>& items = script.items();
    std::vector<EventId> ids(items.size(), kNoEvent);
    for (size_t i = 0; i < items.size(); ++i) {
        if (items[i].kind == env::ScriptItem::Kind::Event) {
            ids[i] = resolve_input(items[i].event);
        }
    }
    for (size_t i = 0; i < items.size(); ++i) {
        const env::ScriptItem& item = items[i];
        if (status() != Engine::Status::Running &&
            item.kind != env::ScriptItem::Kind::Crash) {
            break;
        }
        if (item.kind == env::ScriptItem::Kind::Event) {
            if (ids[i] == kNoEvent) {
                throw rt::RuntimeError({}, "script refers to unknown input event '" +
                                               item.event + "'");
            }
            inject(static_cast<int>(ids[i]), item.value);
        } else {
            feed(item);
        }
    }
    if (status() == Engine::Status::Running) settle();
    return status();
}

Engine::Status Instance::run(const env::Script& script, Diagnostics& diags) {
    try {
        return run(script);
    } catch (const rt::RuntimeError& e) {
        diags.error(e.loc(), e.message());
        return status();
    }
}

Engine::Status Instance::resume(const env::Script& script, Diagnostics& diags) {
    try {
        return resume(script);
    } catch (const rt::RuntimeError& e) {
        diags.error(e.loc(), e.message());
        return status();
    }
}

// -- checkpoint / restore -----------------------------------------------------

namespace {
constexpr char kHostMagic[8] = {'C', 'E', 'U', 'H', 'S', 'T', '0', '1'};
// Compiled-backend snapshots: the engine blob is replaced by the raw
// ceu_ctx_t image plus the descriptor fingerprint that produced it. The
// image may hold .so-relative pointers (string literals), so the blob is
// same-process / same-image only — which restore enforces via fingerprint.
constexpr char kAotMagic[8] = {'C', 'E', 'U', 'A', 'O', 'T', '0', '1'};

void write_stats(rt::snap::ByteWriter& w, const obs::ProcessStats& s) {
    w.u64(s.reactions);
    for (uint64_t k : s.reactions_by_kind) w.u64(k);
    w.u64(s.wakes);
    w.u64(s.emits);
    w.u64(s.timer_fires);
    w.u64(s.instructions);
    w.u64(s.max_reaction_instructions);
    w.u64(s.allocations);
    w.i64(s.max_emit_depth);
    w.u64(s.wall_ns);
    w.u64(s.max_reaction_wall_ns);
    w.u64(s.queue_peak);
    w.u64(s.timers_peak);
    w.u64(s.faults);
    w.u64(s.fault_injections);
    w.u64(s.terminations);
    w.u64(s.checkpoints);
    w.u64(s.restores);
    w.u64(s.supervised_restarts);
    w.u64(s.quarantines);
    w.u64(s.sheds);
}

obs::ProcessStats read_stats(rt::snap::ByteReader& r) {
    obs::ProcessStats s;
    s.reactions = r.u64();
    for (uint64_t& k : s.reactions_by_kind) k = r.u64();
    s.wakes = r.u64();
    s.emits = r.u64();
    s.timer_fires = r.u64();
    s.instructions = r.u64();
    s.max_reaction_instructions = r.u64();
    s.allocations = r.u64();
    s.max_emit_depth = static_cast<int>(r.i64());
    s.wall_ns = r.u64();
    s.max_reaction_wall_ns = r.u64();
    s.queue_peak = static_cast<size_t>(r.u64());
    s.timers_peak = static_cast<size_t>(r.u64());
    s.faults = r.u64();
    s.fault_injections = r.u64();
    s.terminations = r.u64();
    s.checkpoints = r.u64();
    s.restores = r.u64();
    s.supervised_restarts = r.u64();
    s.quarantines = r.u64();
    s.sheds = r.u64();
    return s;
}
}  // namespace

std::vector<uint8_t> Instance::save() const {
    std::vector<uint8_t> out;
    rt::snap::ByteWriter w(out);
    if (is_compiled()) {
        w.bytes(reinterpret_cast<const uint8_t*>(kAotMagic), sizeof kAotMagic);
        w.i64(clock_);
        w.u64(aot_.desc->fingerprint);
        std::vector<uint8_t> ctx(aot_.desc->ctx_size);
        aot_.desc->snapshot(ctx_, ctx.data());
        w.u32(static_cast<uint32_t>(ctx.size()));
        w.bytes(ctx.data(), ctx.size());
        w.u64(recorder_.seq());
        write_stats(w, recorder_.stats());
        return out;
    }
    w.bytes(reinterpret_cast<const uint8_t*>(kHostMagic), sizeof kHostMagic);
    w.i64(clock_);
    // Length-prefixed engine blob so the host layer can add fields after
    // it without version-coupling to the engine format.
    std::vector<uint8_t> eng;
    engine_->save(eng);
    w.u32(static_cast<uint32_t>(eng.size()));
    w.bytes(eng.data(), eng.size());
    w.u64(recorder_.seq());
    write_stats(w, recorder_.stats());
    return out;
}

void Instance::load(const std::vector<uint8_t>& blob) {
    rt::snap::ByteReader r(blob.data(), blob.size());
    uint8_t magic[sizeof kHostMagic];
    for (uint8_t& b : magic) b = r.u8();
    if (is_compiled()) {
        if (std::memcmp(magic, kHostMagic, sizeof kHostMagic) == 0) {
            throw rt::snap::SnapshotError(
                "interpreter (CEUHST01) snapshot cannot restore into a "
                "compiled (AOT) instance");
        }
        if (std::memcmp(magic, kAotMagic, sizeof kAotMagic) != 0) {
            throw rt::snap::SnapshotError(
                "bad magic (not a CEUAOT01 instance snapshot)");
        }
        Micros clock = r.i64();
        uint64_t fp = r.u64();
        if (fp != aot_.desc->fingerprint) {
            throw rt::snap::SnapshotError(
                "snapshot was taken by a different compiled program "
                "(fingerprint mismatch)");
        }
        uint32_t ctx_len = r.count(1);
        if (ctx_len != aot_.desc->ctx_size || r.remaining() < ctx_len) {
            throw rt::snap::SnapshotError("bad context image size");
        }
        std::vector<uint8_t> ctx(blob.end() - static_cast<std::ptrdiff_t>(r.remaining()),
                                 blob.end() - static_cast<std::ptrdiff_t>(r.remaining()) +
                                     static_cast<std::ptrdiff_t>(ctx_len));
        for (uint32_t i = 0; i < ctx_len; ++i) (void)r.u8();
        uint64_t rec_seq = r.u64();
        obs::ProcessStats stats = read_stats(r);
        if (!r.done()) {
            throw rt::snap::SnapshotError("trailing bytes after instance state");
        }
        if (aot_.desc->restore(ctx_, ctx.data(), ctx.size()) == 0) {
            throw rt::snap::SnapshotError("compiled context refused the image");
        }
        clock_ = clock;
        recorder_.restore(stats, rec_seq);
        notify_status();
        return;
    }
    if (std::memcmp(magic, kAotMagic, sizeof kAotMagic) == 0) {
        throw rt::snap::SnapshotError(
            "compiled (CEUAOT01) snapshot cannot restore into an "
            "interpreter instance");
    }
    if (std::memcmp(magic, kHostMagic, sizeof kHostMagic) != 0) {
        throw rt::snap::SnapshotError("bad magic (not a CEUHST01 instance snapshot)");
    }
    Micros clock = r.i64();
    uint32_t eng_len = r.count(1);
    if (r.remaining() < eng_len) {
        throw rt::snap::SnapshotError("truncated engine blob");
    }
    const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(blob.size() - r.remaining());
    std::vector<uint8_t> eng(blob.begin() + off,
                             blob.begin() + off + static_cast<std::ptrdiff_t>(eng_len));
    // Skip over the engine bytes in the outer reader, then parse the tail
    // *before* mutating anything: Engine::load commits atomically, and the
    // recorder must only be touched if the whole blob validates.
    for (uint32_t i = 0; i < eng_len; ++i) (void)r.u8();
    uint64_t rec_seq = r.u64();
    obs::ProcessStats stats = read_stats(r);
    if (!r.done()) {
        throw rt::snap::SnapshotError("trailing bytes after instance state");
    }

    engine_->load(eng.data(), eng.size());
    clock_ = clock;
    recorder_.restore(stats, rec_seq);
    notify_status();
}

// -- observability ------------------------------------------------------------

void Instance::arm_recorder() {
    if (is_compiled()) {
        obs_armed_ = true;
        return;
    }
    engine_->set_recorder(&recorder_);
}

void Instance::add_sink(obs::Sink* sink) {
    recorder_.add_sink(sink);
    recorder_.set_spans_enabled(true);
    arm_recorder();
}

void Instance::own_sink(std::unique_ptr<obs::Sink> sink) {
    add_sink(sink.get());
    owned_sinks_.push_back(std::move(sink));
}

void Instance::observe_stats() {
    bool armed = is_compiled() ? obs_armed_ : engine_->recorder() != nullptr;
    if (!armed) {
        recorder_.set_spans_enabled(recorder_.has_sinks());
        arm_recorder();
    }
}

obs::ProcessStats Instance::snapshot() const {
    obs::ProcessStats s = recorder_.stats();
    // Backend-lifetime gauges beat the recorder's (possibly late-armed)
    // window for the fields the backend tracks unconditionally. The
    // compiled backend counts reactions only; instruction/queue gauges are
    // an interpreter-side feature.
    s.reactions = std::max<uint64_t>(s.reactions, reactions());
    if (is_compiled()) return s;
    s.instructions = std::max<uint64_t>(s.instructions, engine_->instructions_executed());
    s.max_reaction_instructions = std::max<uint64_t>(s.max_reaction_instructions,
                                                     engine_->max_reaction_instructions());
    s.queue_peak = std::max(s.queue_peak, engine_->queue_peak());
    s.timers_peak = std::max(s.timers_peak, engine_->pending_timers());
    return s;
}

void Instance::finish_observation() { recorder_.finish(); }

// -- embedder sinks -----------------------------------------------------------

void Instance::add_output_sink(OutputSink sink) {
    output_sinks_.push_back(std::move(sink));
}

void Instance::add_span_sink(SpanSink sink) {
    own_sink(std::make_unique<obs::CallbackSink>(std::move(sink)));
}

void Instance::add_status_sink(StatusSink sink) {
    // Prime the subscriber with the current state, then record it as the
    // notified baseline so the next transition (and only a transition)
    // fires again.
    rt::Engine::Status st = status();
    sink(st);
    notified_status_ = st;
    status_sinks_.push_back(std::move(sink));
}

void Instance::notify_status() {
    if (status_sinks_.empty()) return;
    rt::Engine::Status st = status();
    if (st == notified_status_) return;
    notified_status_ = st;
    for (const StatusSink& sink : status_sinks_) sink(st);
}

// -- traces -------------------------------------------------------------------

void Instance::note(const std::string& line) {
    // Through engine_->trace on the interpreter so engine-side trace
    // filtering (if any) stays authoritative; straight to the buffer on
    // the compiled backend.
    if (is_compiled()) {
        push_trace_line(line);
    } else {
        engine_->trace(line);
    }
}

// -- backend-neutral introspection --------------------------------------------

rt::Engine::Status Instance::status() const {
    return is_compiled() ? aot_status() : engine_->status();
}

rt::Value Instance::result() const {
    if (is_compiled()) return rt::Value::integer(aot_.desc->result(ctx_));
    return engine_->result();
}

size_t Instance::state_bytes() const {
    return is_compiled() ? aot_.desc->ctx_size : engine_->ram_model_bytes();
}

Micros Instance::now() const {
    return is_compiled() ? aot_.desc->now(ctx_) : engine_->now();
}

uint64_t Instance::reactions() const {
    return is_compiled() ? aot_.desc->reactions(ctx_) : engine_->reactions();
}

Micros Instance::next_timer_deadline() const {
    return is_compiled() ? aot_.desc->next_deadline(ctx_)
                         : engine_->next_timer_deadline();
}

bool Instance::has_async_work() const {
    return is_compiled() ? aot_.desc->has_async(ctx_) != 0
                         : engine_->has_async_work();
}

std::string Instance::trace_text() const {
    std::string out;
    for (const auto& line : trace_) {
        out += line;
        out += '\n';
    }
    return out;
}

}  // namespace ceu::host
