#include "testgen/shrink.hpp"

#include <utility>

#include "ast/ast.hpp"
#include "parser/parser.hpp"
#include "testgen/generator.hpp"
#include "util/diag.hpp"

namespace ceu::testgen {
namespace {

// Program mutations are addressed by a flat index assigned during a fixed
// pre-order traversal, so "try mutation k of the current best program" is
// well-defined without holding pointers across re-parses.
struct MutationCursor {
    int target = -1;   // which mutation to apply (-1: just count)
    int counter = 0;
    bool applied = false;

    /// True when the current slot is the target (and marks it applied).
    bool hit() {
        bool h = counter == target;
        ++counter;
        if (h) applied = true;
        return h;
    }
};

void mutate_block(ast::BlockBody& block, MutationCursor& cur);

void mutate_stmt_children(ast::Stmt& s, MutationCursor& cur) {
    switch (s.kind) {
        case ast::StmtKind::If: {
            auto& st = static_cast<ast::IfStmt&>(s);
            mutate_block(st.then_body, cur);
            mutate_block(st.else_body, cur);
            break;
        }
        case ast::StmtKind::Loop:
            mutate_block(static_cast<ast::LoopStmt&>(s).body, cur);
            break;
        case ast::StmtKind::Par:
            for (auto& b : static_cast<ast::ParStmt&>(s).branches) mutate_block(b, cur);
            break;
        case ast::StmtKind::Block:
            mutate_block(static_cast<ast::BlockStmt&>(s).body, cur);
            break;
        case ast::StmtKind::Async:
            mutate_block(static_cast<ast::AsyncStmt&>(s).body, cur);
            break;
        case ast::StmtKind::Assign: {
            auto& st = static_cast<ast::AssignStmt&>(s);
            if (st.rhs_stmt) mutate_stmt_children(*st.rhs_stmt, cur);
            break;
        }
        case ast::StmtKind::DeclVar:
            for (auto& v : static_cast<ast::DeclVarStmt&>(s).vars) {
                if (v.init_stmt) mutate_stmt_children(*v.init_stmt, cur);
            }
            break;
        default:
            break;
    }
}

/// Replaces block.stmts[i] by the statements of `body` (spliced in place).
void splice(ast::BlockBody& block, size_t i, ast::BlockBody&& body) {
    std::vector<ast::StmtPtr> moved = std::move(body.stmts);
    block.stmts.erase(block.stmts.begin() + static_cast<long>(i));
    block.stmts.insert(block.stmts.begin() + static_cast<long>(i),
                       std::make_move_iterator(moved.begin()),
                       std::make_move_iterator(moved.end()));
}

void mutate_block(ast::BlockBody& block, MutationCursor& cur) {
    for (size_t i = 0; i < block.stmts.size() && !cur.applied; ++i) {
        ast::Stmt& s = *block.stmts[i];
        // 1. Delete the statement outright.
        if (cur.hit()) {
            block.stmts.erase(block.stmts.begin() + static_cast<long>(i));
            return;
        }
        // 2. Structure-flattening replacements.
        switch (s.kind) {
            case ast::StmtKind::Par: {
                auto& st = static_cast<ast::ParStmt&>(s);
                for (size_t j = 0; j < st.branches.size(); ++j) {
                    if (cur.hit()) {
                        splice(block, i, std::move(st.branches[j]));
                        return;
                    }
                }
                break;
            }
            case ast::StmtKind::If: {
                auto& st = static_cast<ast::IfStmt&>(s);
                if (cur.hit()) {
                    splice(block, i, std::move(st.then_body));
                    return;
                }
                if (st.has_else && cur.hit()) {
                    splice(block, i, std::move(st.else_body));
                    return;
                }
                break;
            }
            case ast::StmtKind::Loop: {
                if (cur.hit()) {
                    splice(block, i, std::move(static_cast<ast::LoopStmt&>(s).body));
                    return;
                }
                break;
            }
            default:
                break;
        }
        // 3. Recurse for reductions inside the statement.
        mutate_stmt_children(s, cur);
    }
}

/// Applies mutation `target` to a fresh parse of `source`; returns the new
/// source, or "" when the program no longer parses or `target` is out of
/// range (the caller then stops enumerating).
std::string apply_mutation(const std::string& source, int target, bool* in_range) {
    Diagnostics diags;
    ast::Program prog = parse_source(source, diags, "<shrink>");
    *in_range = false;
    if (!diags.ok()) return "";
    MutationCursor cur;
    cur.target = target;
    mutate_block(prog.body, cur);
    if (!cur.applied) return "";
    *in_range = true;
    return render(prog);
}

env::Script script_from_items(const std::vector<env::ScriptItem>& items) {
    env::Script s;
    for (const auto& it : items) {
        switch (it.kind) {
            case env::ScriptItem::Kind::Event:
                s.event(it.event, it.value.as_int());
                break;
            case env::ScriptItem::Kind::Advance:
                s.advance(it.us);
                break;
            case env::ScriptItem::Kind::AsyncIdle:
                s.settle_asyncs();
                break;
            case env::ScriptItem::Kind::Crash:
                s.crash();
                break;
        }
    }
    return s;
}

}  // namespace

ShrinkResult shrink(const std::string& source, const env::Script& script,
                    DiffResult::Kind kind, const ShrinkOptions& opt) {
    ShrinkResult out;
    out.source = source;
    out.script = script;
    out.kind = kind;

    auto oracle = [&](const std::string& src, const env::Script& scr) {
        ++out.attempts;
        return run_differential(src, scr, opt.diff).kind == kind;
    };

    // Sanity: the input must actually reproduce. (Also catches flaky
    // failures early instead of shrinking noise.)
    if (!oracle(source, script)) {
        out.script_text = script_text(script);
        return out;
    }

    bool progress = true;
    while (progress && out.attempts < opt.max_attempts) {
        progress = false;

        // Script ddmin: drop chunks, halving the chunk size down to 1.
        std::vector<env::ScriptItem> items = out.script.items();
        for (size_t chunk = std::max<size_t>(items.size() / 2, 1); chunk >= 1; chunk /= 2) {
            for (size_t at = 0; at + chunk <= items.size() && out.attempts < opt.max_attempts;) {
                std::vector<env::ScriptItem> cand(items.begin(),
                                                  items.begin() + static_cast<long>(at));
                cand.insert(cand.end(), items.begin() + static_cast<long>(at + chunk),
                            items.end());
                if (oracle(out.source, script_from_items(cand))) {
                    items = std::move(cand);
                    out.removed_items += static_cast<int>(chunk);
                    progress = true;
                    // keep `at`: the next chunk slid into place
                } else {
                    at += chunk;
                }
            }
            if (chunk == 1) break;
        }
        out.script = script_from_items(items);

        // Program mutations, first-to-last; restart from 0 after a hit so
        // indices stay aligned with the (new) current best.
        for (int k = 0; out.attempts < opt.max_attempts;) {
            bool in_range = false;
            std::string cand = apply_mutation(out.source, k, &in_range);
            if (!in_range) break;
            if (!cand.empty() && cand != out.source && oracle(cand, out.script)) {
                out.source = std::move(cand);
                ++out.removed_stmts;
                progress = true;
                k = 0;
            } else {
                ++k;
            }
        }
    }

    out.script_text = script_text(out.script);
    return out;
}

}  // namespace ceu::testgen
