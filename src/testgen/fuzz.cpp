#include "testgen/fuzz.hpp"

#include <chrono>
#include <fstream>
#include <sstream>

namespace ceu::testgen {
namespace {

std::string trim(const std::string& s) {
    size_t a = s.find_first_not_of(" \t\r\n");
    if (a == std::string::npos) return "";
    size_t b = s.find_last_not_of(" \t\r\n");
    return s.substr(a, b - a + 1);
}

}  // namespace

std::string FuzzReport::summary() const {
    std::ostringstream os;
    os << total << " programs: " << agree << " agree, " << refused << " dfa-refused ("
       << refused_diverged << " observably diverged), " << unknown << " dfa-unknown, "
       << failures << " failures";
    if (seconds > 0) {
        os << " [" << static_cast<int>(programs_per_sec()) << " programs/sec]";
    }
    return os.str();
}

FuzzReport run_fuzz(const FuzzOptions& opt,
                    const std::function<void(const std::string&)>& log) {
    FuzzReport rep;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < opt.count; ++i) {
        uint64_t seed = opt.seed + static_cast<uint64_t>(i);
        GenCase gc = generate(seed, opt.gen);
        DiffResult r = run_differential(gc.source, gc.script, opt.diff);
        ++rep.total;
        switch (r.kind) {
            case DiffResult::Kind::Agree:
                ++rep.agree;
                continue;
            case DiffResult::Kind::DfaRefused:
                ++rep.refused;
                if (r.refused_diverged) ++rep.refused_diverged;
                continue;
            case DiffResult::Kind::DfaUnknown:
                ++rep.unknown;
                continue;
            default:
                break;
        }
        // A genuine failure: shrink, persist, report.
        ++rep.failures;
        FuzzFailure fail;
        fail.seed = seed;
        fail.kind = r.kind;
        fail.detail = r.detail;
        fail.source = gc.source;
        fail.script_text = gc.script_text;
        if (opt.shrink_failures) {
            ShrinkOptions sopt = opt.shrink;
            sopt.diff = opt.diff;
            ShrinkResult s = shrink(gc.source, gc.script, r.kind, sopt);
            fail.source = s.source;
            fail.script_text = s.script_text;
        }
        if (!opt.corpus_dir.empty()) {
            CorpusCase cc;
            cc.source = fail.source;
            cc.script_text = fail.script_text;
            cc.kind = DiffResult::kind_name(fail.kind);
            cc.seed = seed;
            std::string path = opt.corpus_dir + "/seed" + std::to_string(seed) + "_" +
                               cc.kind + ".ceu";
            std::ofstream f(path);
            if (f) {
                f << corpus_format(cc);
                fail.corpus_path = path;
            }
        }
        if (log) {
            log("seed " + std::to_string(seed) + ": " + DiffResult::kind_name(fail.kind) +
                (fail.detail.empty() ? "" : " (" + fail.detail + ")") +
                (fail.corpus_path.empty() ? "" : " -> " + fail.corpus_path));
        }
        rep.failed.push_back(std::move(fail));
    }
    rep.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (log) log(rep.summary());
    return rep;
}

std::string corpus_format(const CorpusCase& c) {
    std::ostringstream os;
    os << "# ceu-corpus kind=" << c.kind << " seed=" << c.seed << "\n";
    os << c.source;
    if (c.source.empty() || c.source.back() != '\n') os << "\n";
    os << "=== script ===\n";
    os << c.script_text;
    if (!c.script_text.empty() && c.script_text.back() != '\n') os << "\n";
    return os.str();
}

bool corpus_parse(const std::string& text, CorpusCase* out) {
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line)) return false;
    if (line.rfind("# ceu-corpus", 0) != 0) return false;
    size_t kpos = line.find("kind=");
    size_t spos = line.find("seed=");
    if (kpos != std::string::npos) {
        std::string rest = line.substr(kpos + 5);
        out->kind = rest.substr(0, rest.find(' '));
    }
    if (spos != std::string::npos) {
        out->seed = std::strtoull(line.c_str() + spos + 5, nullptr, 10);
    }
    std::string src;
    std::string scr;
    bool in_script = false;
    while (std::getline(is, line)) {
        if (trim(line) == "=== script ===") {
            in_script = true;
            continue;
        }
        (in_script ? scr : src) += line + "\n";
    }
    out->source = src;
    out->script_text = scr;
    return true;
}

}  // namespace ceu::testgen
