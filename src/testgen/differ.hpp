// Differential driver: one generated (or hand-written) program + script
// pair is executed under every semantics the repo implements —
//
//   * the rt::Engine interpreter under FIFO tie-breaking,
//   * the same interpreter under LIFO tie-breaking,
//   * the cgen-emitted C, compiled with the host C compiler and run with
//     the script on stdin,
//   * the AOT backend: the re-entrant cgen emission compiled into a shared
//     object, dlopen'd, and driven *inside a 1-member reactor::Reactor* —
//     exercising the whole compiled-fleet path (descriptor entry points,
//     host-api trace routing, fleet timer wheel indexing) in-process,
//
// and the observable traces are compared against what the temporal
// analysis (dfa/) promised. The conformance contract (paper §2.6) is:
//
//   DFA says OK (deterministic, exploration complete)
//       -> all three executions produce identical traces, results and
//          final statuses. Any mismatch is a bug in one of the backends.
//   DFA refuses (conflicts found)
//       -> the program MAY diverge between schedulers; the harness only
//          records whether it actually did (a meaningfulness statistic),
//          it never asserts equality.
//   DFA incomplete (state budget exhausted)
//       -> no verdict; the case is counted but not failed.
//
// A divergence report carries both traces so the shrinker can preserve
// "same kind of failure" while minimizing.
#pragma once

#include <string>
#include <vector>

#include "env/script.hpp"
#include "runtime/value.hpp"

namespace ceu::testgen {

struct DiffOptions {
    /// Host C compiler invocation prefix (completed with -o out in.c).
    std::string cc = "cc -std=c11 -O1";
    /// Scratch directory for .c/.bin/.in/.out artifacts ("" = TempDir).
    std::string workdir;
    /// DFA exploration budget (verdicts above it become Unknown).
    size_t max_states = 20000;
    /// Skip the compile-and-run C leg entirely (DFA + tie-break only);
    /// used by quick smoke modes where spawning a compiler is too slow.
    bool run_cgen = true;
    /// Keep the generated artifacts on disk even when the case agrees.
    bool keep_artifacts = false;
    /// Cross-check the modular partition-and-compose analysis against the
    /// monolithic DFA verdict (same conflicts modulo witness choice).
    bool check_modular = true;
    /// Cross-check the AOT backend (re-entrant cgen → .so → dlopen) driven
    /// through a 1-member reactor against the interpreter FIFO trace.
    /// Skipped (like the classic C leg) when run_cgen is off — both legs
    /// spawn the host compiler.
    bool check_aot = true;
    /// Compiler command for the AOT shared object (gets the -fPIC/-shared
    /// flags from aot::BuildOptions; unlike `cc` this is just the program).
    std::string aot_cc = "cc";
    /// Emit the classic standalone C harness from the re-entrant (AOT)
    /// code path — the deprecated single-instance wrappers over one static
    /// context — instead of the legacy globals emission. The TraceCompat
    /// suite drives fixed seeds through both entry points.
    bool cgen_reentrant = false;
};

struct DiffResult {
    enum class Kind {
        Agree,             // every applicable cross-check held
        CompileError,      // Céu frontend rejected the program (generator bug)
        DfaRefused,        // DFA found conflicts; parity not asserted
        DfaUnknown,        // DFA hit the state budget; parity not asserted
        TieBreakDiverged,  // DFA OK but FIFO != LIFO  (engine/dfa bug)
        CgenDiverged,      // DFA OK but C != interpreter (cgen bug)
        CgenBuildError,    // host cc rejected the emitted C (cgen bug)
        EngineError,       // interpreter raised a runtime error (engine bug)
        ModularDiverged,   // composed modular verdict != monolithic DFA
        AotDiverged,       // DFA OK but AOT-in-reactor != interpreter
    };
    Kind kind = Kind::Agree;

    /// For DfaRefused cases: did FIFO/LIFO/C actually disagree? (The
    /// statistic showing the conflict bias produces *meaningful* refusals.)
    bool refused_diverged = false;

    std::vector<std::string> fifo_trace;
    std::vector<std::string> lifo_trace;
    std::vector<std::string> cgen_trace;
    std::vector<std::string> aot_trace;
    int fifo_exit = 0;   // uint8-truncated program result
    int lifo_exit = 0;
    int cgen_exit = 0;
    int aot_exit = 0;
    size_t dfa_states = 0;
    size_t dfa_conflicts = 0;

    std::string detail;  // human-readable first point of divergence / error

    [[nodiscard]] bool failure() const {
        return kind == Kind::CompileError || kind == Kind::TieBreakDiverged ||
               kind == Kind::CgenDiverged || kind == Kind::CgenBuildError ||
               kind == Kind::EngineError || kind == Kind::ModularDiverged ||
               kind == Kind::AotDiverged;
    }
    [[nodiscard]] static const char* kind_name(Kind k);
};

/// Runs the full differential check on one program + script pair.
/// Never throws: every failure mode is folded into the result kind.
DiffResult run_differential(const std::string& source, const env::Script& script,
                            const DiffOptions& opt = {});

/// One leg of the reaction-trace byte-compatibility check: the program +
/// script pair executed with Chrome tracing armed. `trace` is the complete
/// trace_event JSON (footer included) when `ok`.
struct TraceRun {
    bool ok = false;
    std::string error;  // compile/build/run failure detail
    std::string trace;
};

/// Interpreter leg: host::Instance with a ChromeTraceSink attached.
TraceRun interp_chrome_trace(const std::string& source, const env::Script& script);
/// Compiled leg: the cgen binary run with CEU_TRACE= pointing at a scratch
/// file. Byte-identical to the interpreter leg on conforming programs.
TraceRun cgen_chrome_trace(const std::string& source, const env::Script& script,
                           const DiffOptions& opt = {});

}  // namespace ceu::testgen
