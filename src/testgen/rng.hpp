// Deterministic PRNG for the conformance generator. SplitMix64: the same
// seed must produce the same program on every platform and compiler, so the
// generator never touches rand()/mt19937 (whose distributions are
// implementation-defined) — reductions and ranges use plain modulo.
#pragma once

#include <cstdint>
#include <vector>

namespace ceu::testgen {

class Rng {
  public:
    explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {
        // Decorrelate small consecutive seeds.
        next();
        next();
    }

    uint64_t next() {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform in [lo, hi] (inclusive). Requires lo <= hi.
    int range(int lo, int hi) {
        return lo + static_cast<int>(next() % static_cast<uint64_t>(hi - lo + 1));
    }

    /// True with probability `permille`/1000.
    bool chance(int permille) { return next() % 1000 < static_cast<uint64_t>(permille); }

    template <typename T>
    const T& pick(const std::vector<T>& v) {
        return v[next() % v.size()];
    }

  private:
    uint64_t state_;
};

}  // namespace ceu::testgen
