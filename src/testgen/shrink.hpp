// Delta-debugging shrinker: given a program + script pair whose
// differential check failed, greedily minimizes both until no single
// reduction preserves the failure. The oracle is "the differ reports the
// SAME failure kind" — a candidate that fails differently (or compiles no
// longer / agrees) is rejected, so the shrunk reproducer still witnesses
// the original bug.
//
// Program reductions work on the re-parsed AST (parse -> mutate -> render
// -> re-test), in a fixed order so shrinking is deterministic:
//   * delete any one statement of any block,
//   * replace a par by one of its branches (spliced in place),
//   * replace an if by its then- or else-body,
//   * replace a loop by its body.
// Script reductions are classic ddmin chunk removal (halves, then single
// items). Candidates that no longer compile are naturally rejected by the
// oracle, so reductions never need to preserve well-formedness themselves.
#pragma once

#include <string>

#include "env/script.hpp"
#include "testgen/differ.hpp"

namespace ceu::testgen {

struct ShrinkOptions {
    /// Upper bound on oracle invocations (each one may spawn the host C
    /// compiler, so this is the shrink-time budget).
    int max_attempts = 400;
    DiffOptions diff;
};

struct ShrinkResult {
    std::string source;       // minimized program
    env::Script script;       // minimized script
    std::string script_text;
    DiffResult::Kind kind = DiffResult::Kind::Agree;  // the preserved failure
    int attempts = 0;         // oracle invocations spent
    int removed_stmts = 0;    // successful program reductions
    int removed_items = 0;    // successful script reductions
};

/// Minimizes `source`+`script`. `kind` must be the failure the pair
/// exhibits (the caller already ran the differ). If the pair does not
/// actually reproduce `kind`, it is returned unshrunk.
ShrinkResult shrink(const std::string& source, const env::Script& script,
                    DiffResult::Kind kind, const ShrinkOptions& opt = {});

}  // namespace ceu::testgen
