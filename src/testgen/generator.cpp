#include "testgen/generator.hpp"

#include <algorithm>

#include "ast/print.hpp"
#include "testgen/rng.hpp"

namespace ceu::testgen {

using namespace ast;

namespace {

const SourceLoc kLoc{};  // generated nodes carry no source position

// -- AST builders ------------------------------------------------------------

ExprPtr num(int64_t v) { return std::make_unique<NumExpr>(v, kLoc); }
ExprPtr var(const std::string& n) { return std::make_unique<VarExpr>(n, kLoc); }
ExprPtr str(std::string s) { return std::make_unique<StrExpr>(std::move(s), kLoc); }
ExprPtr csym(const std::string& n) { return std::make_unique<CSymExpr>(n, kLoc); }
ExprPtr bin(Tok op, ExprPtr a, ExprPtr b) {
    return std::make_unique<BinopExpr>(op, std::move(a), std::move(b), kLoc);
}

StmtPtr assign(const std::string& name, ExprPtr rhs) {
    auto s = std::make_unique<AssignStmt>(kLoc);
    s->lhs = var(name);
    s->rhs_expr = std::move(rhs);
    return s;
}

StmtPtr assign_stmt_rhs(const std::string& name, StmtPtr rhs) {
    auto s = std::make_unique<AssignStmt>(kLoc);
    s->lhs = var(name);
    s->rhs_stmt = std::move(rhs);
    return s;
}

/// `_printf(fmt, args...)` — the harness's one observable channel. The
/// format must end in exactly one '\n' (one call = one trace line on both
/// the interpreter and the compiled-C side).
StmtPtr printf_stmt(const std::string& fmt, std::vector<ExprPtr> args) {
    std::vector<ExprPtr> all;
    all.push_back(str(fmt));
    for (auto& a : args) all.push_back(std::move(a));
    auto call = std::make_unique<CallExpr>(csym("printf"), std::move(all), kLoc);
    return std::make_unique<ExprStmtStmt>(std::move(call), kLoc);
}

StmtPtr decl_var(const std::string& name, int64_t init) {
    auto d = std::make_unique<DeclVarStmt>(kLoc);
    d->type = Type{"int", 0, false};
    DeclVarStmt::Var v;
    v.name = name;
    v.init = num(init);
    v.loc = kLoc;
    d->vars.push_back(std::move(v));
    return d;
}

// -- generation context ------------------------------------------------------

/// What one worker (or nested branch) is allowed to touch. Disjoint across
/// workers unless the generator is deliberately biasing toward conflicts.
struct Ctx {
    std::vector<std::string> inputs;      // int-valued input events to await
    std::vector<std::string> internals_v; // void internals this trail may await
    std::vector<std::string> internals_i; // int internals this trail may await
    std::vector<std::string> emit_v;      // void internals anyone may emit
    std::vector<std::string> emit_i;      // int internals anyone may emit
    std::vector<std::string> wvars;       // variables this trail may write
    std::vector<std::string> rvars;       // variables this trail may read
    int depth = 0;
    bool may_print = false;
    bool may_async = false;

    [[nodiscard]] bool has_event() const {
        return !inputs.empty() || !internals_v.empty() || !internals_i.empty();
    }
};

const std::vector<Micros> kAwaitPool = {
    1 * kMs, 5 * kMs, 10 * kMs, 49 * kMs, 50 * kMs, 100 * kMs, 250 * kMs,
    500 * kMs, kSec,
};
const std::vector<Micros> kAdvancePool = {
    1 * kMs,  10 * kMs,  49 * kMs,  50 * kMs,  51 * kMs, 99 * kMs,
    100 * kMs, 101 * kMs, 151 * kMs, 250 * kMs, 499 * kMs, kSec,
};

class Generator {
  public:
    Generator(uint64_t seed, const GenOptions& opt) : rng_(seed), opt_(opt), seed_(seed) {}

    GenCase run() {
        GenCase out;
        out.seed = seed_;
        plan();
        build_program(out.program);
        out.source = render(out.program);
        out.script = build_script();
        out.script_text = script_text(out.script);
        out.has_async = has_async_;
        out.biased_conflict = biased_;
        return out;
    }

  private:
    Rng rng_;
    GenOptions opt_;
    uint64_t seed_;

    std::vector<std::string> inputs_;       // not counting Obs
    std::vector<std::string> internals_v_;
    std::vector<std::string> internals_i_;
    std::vector<std::string> vars_;
    int n_workers_ = 1;
    std::vector<Ctx> worker_ctx_;
    bool has_async_ = false;
    bool biased_ = false;
    bool terminator_ = false;
    int async_counter_ = 0;

    // -- planning: names and resource ownership ------------------------------

    void plan() {
        int n_inputs = rng_.range(1, opt_.max_inputs);
        int n_int_v = rng_.range(0, opt_.max_internals);
        int n_int_i = rng_.range(0, std::max(0, opt_.max_internals - n_int_v));
        int n_vars = rng_.range(1, opt_.max_vars);
        n_workers_ = rng_.range(1, opt_.max_workers);
        for (int i = 0; i < n_inputs; ++i) inputs_.push_back("I" + std::to_string(i));
        for (int i = 0; i < n_int_v; ++i) internals_v_.push_back("e" + std::to_string(i));
        for (int i = 0; i < n_int_i; ++i) internals_i_.push_back("x" + std::to_string(i));
        for (int i = 0; i < n_vars; ++i) vars_.push_back("v" + std::to_string(i));
        terminator_ = rng_.chance(opt_.terminator_permille);

        worker_ctx_.assign(static_cast<size_t>(n_workers_), Ctx{});
        // Partition ownership: each resource goes to one worker; with
        // conflict bias a resource is duplicated into a second worker, which
        // is exactly what the temporal analysis exists to refuse.
        auto deal = [&](const std::string& name, auto member) {
            Ctx& owner = worker_ctx_[static_cast<size_t>(rng_.range(0, n_workers_ - 1))];
            (owner.*member).push_back(name);
            if (n_workers_ > 1 && rng_.chance(opt_.conflict_permille)) {
                Ctx& other =
                    worker_ctx_[static_cast<size_t>(rng_.range(0, n_workers_ - 1))];
                if (&other != &owner) {
                    (other.*member).push_back(name);
                    biased_ = true;
                }
            }
        };
        for (const auto& n : inputs_) deal(n, &Ctx::inputs);
        for (const auto& n : internals_v_) deal(n, &Ctx::internals_v);
        for (const auto& n : internals_i_) deal(n, &Ctx::internals_i);
        for (const auto& n : vars_) deal(n, &Ctx::wvars);
        for (Ctx& c : worker_ctx_) {
            c.emit_v = internals_v_;
            c.emit_i = internals_i_;
            c.rvars = c.wvars;  // reads stay write-local: see generator.hpp
            c.may_async = rng_.chance(opt_.async_permille);
            has_async_ = has_async_ || c.may_async;
        }
        // Exactly one worker gets print rights (its prints can never run
        // concurrently with the observer's — different triggers).
        if (rng_.chance(opt_.worker_print_permille)) {
            worker_ctx_[static_cast<size_t>(rng_.range(0, n_workers_ - 1))].may_print =
                true;
        }
        if (biased_) {
            // Shared triggers are already in play; sharing reads/prints too
            // deepens the refusal surface.
            for (Ctx& c : worker_ctx_) {
                if (rng_.chance(300)) c.rvars = vars_;
                if (rng_.chance(300)) c.may_print = true;
            }
        }
    }

    // -- expressions ---------------------------------------------------------

    ExprPtr leaf(const std::vector<std::string>& rvars) {
        if (!rvars.empty() && rng_.chance(600)) return var(rng_.pick(rvars));
        return num(rng_.range(0, 99));
    }

    ExprPtr expr(const std::vector<std::string>& rvars, int depth) {
        if (depth <= 0 || rng_.chance(300)) return leaf(rvars);
        switch (rng_.range(0, 7)) {
            case 0: return bin(Tok::Plus, expr(rvars, depth - 1), expr(rvars, depth - 1));
            case 1: return bin(Tok::Minus, expr(rvars, depth - 1), expr(rvars, depth - 1));
            case 2: return bin(Tok::Star, leaf(rvars), leaf(rvars));  // leaves only
            case 3: return bin(Tok::Slash, expr(rvars, depth - 1), num(rng_.range(1, 97)));
            case 4: return bin(Tok::Percent, expr(rvars, depth - 1), num(rng_.range(2, 97)));
            case 5: return bin(Tok::Lt, leaf(rvars), leaf(rvars));
            case 6: return bin(Tok::EqEq, leaf(rvars), num(rng_.range(0, 9)));
            default: {
                std::vector<ExprPtr> args;
                args.push_back(expr(rvars, depth - 1));
                return std::make_unique<CallExpr>(csym("abs"), std::move(args), kLoc);
            }
        }
    }

    /// RHS of every variable write: bounded to (-9973, 9973) so that no
    /// expression over bounded leaves can overflow int64 (UB in C).
    ExprPtr bounded_expr(const std::vector<std::string>& rvars) {
        return bin(Tok::Percent, expr(rvars, 2), num(9973));
    }

    // -- statements ----------------------------------------------------------

    /// Always produces a statement that awaits (the loop/par safety anchor).
    StmtPtr gen_await(const Ctx& c) {
        enum { Ext, ExtVal, IntV, IntVal, Time, Dyn, Kinds };
        std::vector<int> options;
        if (!c.inputs.empty()) {
            options.push_back(Ext);
            if (!c.wvars.empty()) options.push_back(ExtVal);
        }
        if (!c.internals_v.empty()) options.push_back(IntV);
        if (!c.internals_i.empty() && !c.wvars.empty()) options.push_back(IntVal);
        options.push_back(Time);
        if (!c.rvars.empty()) options.push_back(Dyn);
        switch (rng_.pick(options)) {
            case Ext:
                return std::make_unique<AwaitExtStmt>(rng_.pick(c.inputs), kLoc);
            case ExtVal:
                return assign_stmt_rhs(
                    rng_.pick(c.wvars),
                    std::make_unique<AwaitExtStmt>(rng_.pick(c.inputs), kLoc));
            case IntV:
                return std::make_unique<AwaitIntStmt>(rng_.pick(c.internals_v), kLoc);
            case IntVal:
                return assign_stmt_rhs(
                    rng_.pick(c.wvars),
                    std::make_unique<AwaitIntStmt>(rng_.pick(c.internals_i), kLoc));
            case Dyn: {
                // ((read % 50) + 51) * 1000 — always in [1ms, 101ms].
                ExprPtr us = bin(
                    Tok::Star,
                    bin(Tok::Plus, bin(Tok::Percent, leaf(c.rvars), num(50)), num(51)),
                    num(1000));
                return std::make_unique<AwaitDynStmt>(std::move(us), kLoc);
            }
            case Time:
            default:
                return std::make_unique<AwaitTimeStmt>(rng_.pick(kAwaitPool), kLoc);
        }
    }

    StmtPtr gen_emit(const Ctx& c) {
        bool pick_int = !c.emit_i.empty() && (c.emit_v.empty() || rng_.chance(500));
        if (pick_int) {
            auto e = std::make_unique<EmitIntStmt>(rng_.pick(c.emit_i), kLoc);
            if (rng_.chance(800)) e->value = bounded_expr(c.rvars);
            return e;
        }
        return std::make_unique<EmitIntStmt>(rng_.pick(c.emit_v), kLoc);
    }

    StmtPtr gen_if(const Ctx& c) {
        auto s = std::make_unique<IfStmt>(kLoc);
        s->cond = expr(c.rvars, 2);
        gen_seq(s->then_body, c, rng_.range(1, 2), /*lead_await=*/false);
        if (rng_.chance(500)) {
            s->has_else = true;
            gen_seq(s->else_body, c, rng_.range(1, 2), /*lead_await=*/false);
        }
        return s;
    }

    StmtPtr gen_loop(const Ctx& c) {
        auto s = std::make_unique<LoopStmt>(kLoc);
        Ctx inner = c;
        inner.depth = c.depth + 1;
        // The body starts with an unconditional await, so every path through
        // it suspends — the §2.5 rule holds by construction and any `break`
        // after it is non-instantaneous.
        gen_seq(s->body, inner, rng_.range(1, opt_.max_seq_len - 1), /*lead_await=*/true);
        if (rng_.chance(250)) {
            if (rng_.chance(500)) {
                auto g = std::make_unique<IfStmt>(kLoc);
                g->cond = expr(c.rvars, 1);
                g->then_body.stmts.push_back(std::make_unique<BreakStmt>(kLoc));
                s->body.stmts.push_back(std::move(g));
            } else {
                s->body.stmts.push_back(std::make_unique<BreakStmt>(kLoc));
            }
        }
        return s;
    }

    StmtPtr gen_par(const Ctx& c) {
        auto s = std::make_unique<ParStmt>(rng_.chance(500) ? ParKind::ParAnd
                                                            : ParKind::ParOr,
                                           kLoc);
        // Split the context's resources between the two branches; branches
        // of one par are genuinely concurrent, so in unbiased mode they must
        // not share events or variables.
        Ctx a = c, b = c;
        a.depth = b.depth = c.depth + 1;
        if (!biased_) {
            a.inputs.clear(); b.inputs.clear();
            a.internals_v.clear(); b.internals_v.clear();
            a.internals_i.clear(); b.internals_i.clear();
            a.wvars.clear(); b.wvars.clear();
            for (const auto& n : c.inputs) (rng_.chance(500) ? a : b).inputs.push_back(n);
            for (const auto& n : c.internals_v)
                (rng_.chance(500) ? a : b).internals_v.push_back(n);
            for (const auto& n : c.internals_i)
                (rng_.chance(500) ? a : b).internals_i.push_back(n);
            for (const auto& n : c.wvars) (rng_.chance(500) ? a : b).wvars.push_back(n);
            a.rvars = a.wvars;
            b.rvars = b.wvars;
            // Sibling branches are concurrent: only one may keep the print
            // right (concurrent `_printf`s are a §2.6 C-call conflict).
            bool give_a = rng_.chance(500);
            a.may_print = c.may_print && give_a;
            b.may_print = c.may_print && !give_a;
        }
        s->branches.emplace_back();
        gen_seq(s->branches.back(), a, rng_.range(1, 3), /*lead_await=*/true);
        s->branches.emplace_back();
        gen_seq(s->branches.back(), b, rng_.range(1, 3), /*lead_await=*/true);
        return s;
    }

    /// `v = par do await ...; return e; with await ...; return e; end`.
    StmtPtr gen_value_par(const Ctx& c) {
        auto p = std::make_unique<ParStmt>(ParKind::Par, kLoc);
        for (int i = 0; i < 2; ++i) {
            p->branches.emplace_back();
            BlockBody& b = p->branches.back();
            b.stmts.push_back(gen_await(c));
            auto r = std::make_unique<ReturnStmt>(kLoc);
            r->value = bounded_expr(c.rvars);
            b.stmts.push_back(std::move(r));
        }
        return assign_stmt_rhs(rng_.pick(c.wvars), std::move(p));
    }

    /// `v = async do int a = 0; loop do a = a + 1; if a == K then break; end
    /// end; [emit T;] return a * k; end` — always settles.
    StmtPtr gen_async(const Ctx& c) {
        auto a = std::make_unique<AsyncStmt>(kLoc);
        std::string local = "a" + std::to_string(async_counter_++);
        a->body.stmts.push_back(decl_var(local, 0));
        auto loop = std::make_unique<LoopStmt>(kLoc);
        loop->body.stmts.push_back(
            assign(local, bin(Tok::Plus, var(local), num(1))));
        auto guard = std::make_unique<IfStmt>(kLoc);
        guard->cond = bin(Tok::EqEq, var(local), num(rng_.range(2, 40)));
        guard->then_body.stmts.push_back(std::make_unique<BreakStmt>(kLoc));
        loop->body.stmts.push_back(std::move(guard));
        a->body.stmts.push_back(std::move(loop));
        if (rng_.chance(350)) {
            a->body.stmts.push_back(
                std::make_unique<EmitTimeStmt>(rng_.pick(kAwaitPool), kLoc));
        }
        if (!inputs_.empty() && rng_.chance(250)) {
            auto em = std::make_unique<EmitExtStmt>(rng_.pick(inputs_), kLoc);
            em->value = num(rng_.range(0, 99));
            a->body.stmts.push_back(std::move(em));
        }
        auto r = std::make_unique<ReturnStmt>(kLoc);
        r->value = bin(Tok::Star, var(local), num(rng_.range(0, 9)));
        a->body.stmts.push_back(std::move(r));
        return assign_stmt_rhs(rng_.pick(c.wvars), std::move(a));
    }

    StmtPtr gen_print(const Ctx& c, int tag) {
        std::string fmt = "w" + std::to_string(tag);
        std::vector<ExprPtr> args;
        if (!c.rvars.empty()) {
            const std::string& v = rng_.pick(c.rvars);
            fmt += " " + v + "=%ld";
            args.push_back(var(v));
        }
        fmt += "\n";
        return printf_stmt(fmt, std::move(args));
    }

    void gen_seq(BlockBody& out, const Ctx& c, int len, bool lead_await) {
        if (lead_await) out.stmts.push_back(gen_await(c));
        for (int i = 0; i < len; ++i) {
            out.stmts.push_back(gen_stmt(c));
        }
    }

    StmtPtr gen_stmt(const Ctx& c) {
        // Weighted statement choice, constrained by the context.
        struct Choice { int weight; int kind; };
        enum { Assign, Emit, Await, If, Loop, Par, ValuePar, Async, Print };
        std::vector<Choice> table;
        if (!c.wvars.empty()) table.push_back({28, Assign});
        if (!c.emit_v.empty() || !c.emit_i.empty()) table.push_back({18, Emit});
        table.push_back({24, Await});
        if (!c.rvars.empty()) table.push_back({10, If});
        if (c.depth < opt_.max_depth) table.push_back({7, Loop});
        if (c.depth + 1 < opt_.max_depth && c.has_event()) table.push_back({5, Par});
        if (!c.wvars.empty()) table.push_back({3, ValuePar});
        if (c.may_async && !c.wvars.empty()) table.push_back({3, Async});
        if (c.may_print) table.push_back({6, Print});
        int total = 0;
        for (const Choice& ch : table) total += ch.weight;
        int roll = rng_.range(0, total - 1);
        int kind = Await;
        for (const Choice& ch : table) {
            if (roll < ch.weight) { kind = ch.kind; break; }
            roll -= ch.weight;
        }
        switch (kind) {
            case Assign: return assign(rng_.pick(c.wvars), bounded_expr(c.rvars));
            case Emit: return gen_emit(c);
            case If: return gen_if(c);
            case Loop: return gen_loop(c);
            case Par: return gen_par(c);
            case ValuePar: return gen_value_par(c);
            case Async: return gen_async(c);
            case Print: return gen_print(c, c.depth);
            case Await:
            default: return gen_await(c);
        }
    }

    // -- program assembly ----------------------------------------------------

    void build_worker(BlockBody& out, Ctx& c, int index) {
        // Workers open with an await so their bodies never run in the boot
        // reaction (all workers boot concurrently).
        bool lead = !biased_ || rng_.chance(800);
        gen_seq(out, c, rng_.range(1, opt_.max_seq_len), lead);
        // Keep the trail alive: most workers loop forever over their events.
        if (rng_.chance(700)) {
            auto loop = std::make_unique<LoopStmt>(kLoc);
            Ctx inner = c;
            inner.depth = c.depth + 1;
            gen_seq(loop->body, inner, rng_.range(1, 3), /*lead_await=*/true);
            out.stmts.push_back(std::move(loop));
        } else {
            out.stmts.push_back(std::make_unique<AwaitForeverStmt>(kLoc));
        }
        (void)index;
    }

    void build_observer(BlockBody& out) {
        auto loop = std::make_unique<LoopStmt>(kLoc);
        loop->body.stmts.push_back(std::make_unique<AwaitExtStmt>("Obs", kLoc));
        std::string fmt = "obs";
        std::vector<ExprPtr> args;
        for (const auto& v : vars_) {
            fmt += " " + v + "=%ld";
            args.push_back(var(v));
        }
        fmt += "\n";
        loop->body.stmts.push_back(printf_stmt(fmt, std::move(args)));
        out.stmts.push_back(std::move(loop));
    }

    void build_terminator(BlockBody& out) {
        out.stmts.push_back(
            std::make_unique<AwaitTimeStmt>(rng_.pick(kAdvancePool) * 2, kLoc));
        auto r = std::make_unique<ReturnStmt>(kLoc);
        r->value = bin(Tok::Percent, expr(vars_, 1), num(100));
        out.stmts.push_back(std::move(r));
    }

    void build_program(Program& prog) {
        prog.name = "fuzz" + std::to_string(seed_);
        // input int I0, ..., Obs;
        auto in = std::make_unique<DeclInputStmt>(kLoc);
        in->type = Type{"int", 0, false};
        in->names = inputs_;
        in->names.push_back("Obs");
        prog.body.stmts.push_back(std::move(in));
        if (!internals_v_.empty()) {
            auto d = std::make_unique<DeclInternalStmt>(kLoc);
            d->type = Type{"void", 0, false};
            d->names = internals_v_;
            prog.body.stmts.push_back(std::move(d));
        }
        if (!internals_i_.empty()) {
            auto d = std::make_unique<DeclInternalStmt>(kLoc);
            d->type = Type{"int", 0, false};
            d->names = internals_i_;
            prog.body.stmts.push_back(std::move(d));
        }
        // `_abs` appears inside expressions of concurrent trails; declaring
        // it pure keeps those calls out of the C-conflict check (§2.6).
        {
            auto p = std::make_unique<PureStmt>(kLoc);
            p->names.push_back("abs");
            prog.body.stmts.push_back(std::move(p));
        }
        for (const auto& v : vars_) {
            prog.body.stmts.push_back(decl_var(v, rng_.range(0, 99)));
        }
        auto par = std::make_unique<ParStmt>(ParKind::Par, kLoc);
        for (int w = 0; w < n_workers_; ++w) {
            par->branches.emplace_back();
            build_worker(par->branches.back(), worker_ctx_[static_cast<size_t>(w)], w);
        }
        par->branches.emplace_back();
        build_observer(par->branches.back());
        if (terminator_) {
            par->branches.emplace_back();
            build_terminator(par->branches.back());
        }
        prog.body.stmts.push_back(std::move(par));
    }

    // -- scripts -------------------------------------------------------------

    env::Script build_script() {
        env::Script s;
        std::vector<std::string> all_inputs = inputs_;
        all_inputs.push_back("Obs");
        int len = rng_.range(opt_.script_len / 2, opt_.script_len);
        for (int i = 0; i < len; ++i) {
            int roll = rng_.range(0, 99);
            if (roll < 40) {
                s.event(rng_.pick(all_inputs), rng_.range(0, 99));
            } else if (roll < 80) {
                s.advance(rng_.pick(kAdvancePool));
            } else if (roll < 88 && has_async_) {
                s.settle_asyncs();
            } else {
                s.event("Obs", 0);
            }
        }
        s.event("Obs", 0);
        if (has_async_) s.settle_asyncs();
        return s;
    }
};

}  // namespace

GenCase generate(uint64_t seed, const GenOptions& opt) {
    return Generator(seed, opt).run();
}

TimingChain timing_chain(uint64_t seed, int max_segments) {
    Rng rng(seed * 0x51ed270b + 17);
    TimingChain out;
    int n = rng.range(2, std::max(2, max_segments));
    std::string src = "int s = 0;\n";
    for (int i = 0; i < n; ++i) {
        Micros d = rng.pick(kAwaitPool);
        out.durations.push_back(d);
        out.total += d;
        src += "await " + format_micros(d) + ";\n";
        src += "s = s + 1;\n";
        src += "_printf(\"seg %ld\\n\", s);\n";
    }
    src += "return s;\n";
    out.source = src;
    return out;
}

std::string render(const ast::Program& prog) { return ast::print_block(prog.body); }

std::string script_text(const env::Script& s) {
    std::string out;
    for (const auto& item : s.items()) {
        switch (item.kind) {
            case env::ScriptItem::Kind::Event:
                out += "E " + item.event + " " + std::to_string(item.value.as_int()) + "\n";
                break;
            case env::ScriptItem::Kind::Advance:
                out += "T " + std::to_string(item.us) + "\n";
                break;
            case env::ScriptItem::Kind::AsyncIdle:
                out += "A\n";
                break;
            case env::ScriptItem::Kind::Crash:
                out += "C\n";
                break;
        }
    }
    return out;
}

}  // namespace ceu::testgen
