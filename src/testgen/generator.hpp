// Seeded generator of well-formed Céu programs + matched input scripts
// (QuickCheck/Csmith-style, see PAPERS.md): the driver for the differential
// conformance harness. Programs are built directly at the AST level and are
// correct by construction:
//
//  * every loop body starts with an await (the §2.5 bounded-execution rule);
//  * every par branch starts with an await, so branches are never
//    concurrent at the instant the par spawns (boot-time races would make
//    almost every program DFA-refused);
//  * workers own disjoint input events, internal-event await-rights and
//    write-variable sets, so the only sources of concurrency are timer
//    collisions — unless `conflict_permille` deliberately shares resources
//    to exercise the refusal path;
//  * a dedicated observer trail snapshots every variable on a reserved
//    `Obs` input, giving each program rich observable output without
//    introducing concurrent C calls;
//  * asyncs contain only counting loops with guaranteed breaks (they must
//    settle: both harness sides drain asyncs to idle);
//  * arithmetic is wrapped in `% 9973` at every assignment and
//    multiplication only combines leaves, so no intermediate value can
//    overflow int64 (signed overflow is UB in the generated C).
//
// The same seed always yields byte-identical source and script.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ast/ast.hpp"
#include "env/script.hpp"

namespace ceu::testgen {

struct GenOptions {
    int max_workers = 3;        // parallel worker trails (plus the observer)
    int max_vars = 5;
    int max_inputs = 3;         // not counting the reserved Obs event
    int max_internals = 3;
    int max_depth = 3;          // loop/par/if nesting inside a worker
    int max_seq_len = 5;        // statements per generated sequence
    int script_len = 20;        // approximate input-script length
    int conflict_permille = 200;    // share resources across workers on purpose
    int async_permille = 180;       // workers that spawn an async block
    int terminator_permille = 300;  // add a timed `return` branch
    int worker_print_permille = 350;  // the chosen printer worker really prints
};

struct GenCase {
    uint64_t seed = 0;
    ast::Program program;       // the generated AST; `source` is its rendering
    std::string source;
    env::Script script;
    std::string script_text;    // textual protocol (ceuc --run / cgen main)
    bool has_async = false;
    bool biased_conflict = false;  // generator intentionally shared resources
};

/// Generates one program + script pair from `seed`.
GenCase generate(uint64_t seed, const GenOptions& opt = {});

/// A straight-line await-time chain with known segment durations, for the
/// §2.4 residual-delta tests: prints one line per segment, terminates with
/// the segment count after exactly sum(durations) of logical time.
struct TimingChain {
    std::string source;
    std::vector<Micros> durations;
    Micros total = 0;
};
TimingChain timing_chain(uint64_t seed, int max_segments = 6);

/// Renders a program AST back to parseable Céu source.
std::string render(const ast::Program& prog);

/// Renders a script in the line protocol shared by `ceuc --run` and the
/// cgen `main()` harness (numeric `T` so both sides parse it identically).
std::string script_text(const env::Script& s);

}  // namespace ceu::testgen
