// The fuzz loop: generate -> differential-check -> (on failure) shrink ->
// persist. This is what `ceuc --gen-fuzz N --seed S` and the conformance
// ctest shards drive; the nightly CI sweep is the same loop with a larger
// seed range and a corpus directory for artifacts.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "testgen/differ.hpp"
#include "testgen/generator.hpp"
#include "testgen/shrink.hpp"

namespace ceu::testgen {

struct FuzzOptions {
    uint64_t seed = 0;  // first seed; cases use seed, seed+1, ...
    int count = 100;
    GenOptions gen;
    DiffOptions diff;
    /// Shrink failing cases before reporting (costs extra differ runs).
    bool shrink_failures = true;
    ShrinkOptions shrink;
    /// When non-empty, shrunk failures are written here as corpus files.
    std::string corpus_dir;
};

struct FuzzFailure {
    uint64_t seed = 0;
    DiffResult::Kind kind = DiffResult::Kind::Agree;
    std::string detail;
    std::string source;       // shrunk when shrinking is on
    std::string script_text;
    std::string corpus_path;  // "" unless persisted
};

struct FuzzReport {
    int total = 0;
    int agree = 0;
    int refused = 0;           // DFA found conflicts (parity not asserted)
    int refused_diverged = 0;  // ... and the schedulers really disagreed
    int unknown = 0;           // DFA state budget exhausted
    int failures = 0;          // genuine conformance bugs
    double seconds = 0.0;
    std::vector<FuzzFailure> failed;

    [[nodiscard]] double programs_per_sec() const {
        return seconds > 0 ? total / seconds : 0.0;
    }
    [[nodiscard]] std::string summary() const;
};

/// Runs the loop. `log` (optional) receives one line per failing case and
/// the final summary — the CLI wires it to stderr, tests leave it unset.
FuzzReport run_fuzz(const FuzzOptions& opt,
                    const std::function<void(const std::string&)>& log = {});

// Corpus files bundle the program and its script in one artifact:
//
//   # ceu-corpus kind=<kind> seed=<seed>
//   <program source>
//   === script ===
//   <script lines>
//
struct CorpusCase {
    std::string source;
    std::string script_text;
    std::string kind;  // DiffResult kind name recorded at capture time
    uint64_t seed = 0;
};

std::string corpus_format(const CorpusCase& c);
/// Parses a corpus file's text. Returns false on a malformed header.
bool corpus_parse(const std::string& text, CorpusCase* out);

}  // namespace ceu::testgen
