#include "testgen/differ.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "analysis/modular.hpp"
#include "aot/aot.hpp"
#include "cgen/cgen.hpp"
#include "codegen/flatten.hpp"
#include "dfa/dfa.hpp"
#include "host/instance.hpp"
#include "reactor/reactor.hpp"
#include "runtime/engine.hpp"
#include "testgen/generator.hpp"

namespace ceu::testgen {
namespace {

struct InterpRun {
    std::vector<std::string> trace;
    int exit_code = 0;
    rt::Engine::Status status = rt::Engine::Status::Loaded;
    bool error = false;
    std::string error_msg;
};

/// Mirrors the cgen main(): boot, feed the script (stopping once the
/// program leaves Running), drain asyncs to idle. Drives the engine through
/// the host::Instance facade; the async loop deliberately avoids
/// Instance::settle's clock sync to match the compiled harness exactly.
InterpRun run_interp(const flat::CompiledProgram& cp, const env::Script& script,
                     rt::EngineOptions::TieBreak tb, obs::Sink* sink = nullptr,
                     bool crash_power_cycles = false) {
    host::Config cfg;
    cfg.engine.tie_break = tb;
    InterpRun r;
    try {
        host::Instance inst(cp, cfg);
        if (sink != nullptr) inst.add_sink(sink);
        inst.boot();
        for (const env::ScriptItem& item : script.items()) {
            if (inst.status() != rt::Engine::Status::Running) break;
            switch (item.kind) {
                case env::ScriptItem::Kind::Event:
                    // Unknown events are discarded, like the compiled C's
                    // input switch default.
                    inst.try_inject(item.event, item.value);
                    break;
                case env::ScriptItem::Kind::Advance:
                    inst.advance(item.us);
                    break;
                case env::ScriptItem::Kind::AsyncIdle:
                    for (int i = 0; i < 10'000'000 && inst.step_async(); ++i) {}
                    break;
                case env::ScriptItem::Kind::Crash:
                    // Default: bare reset+boot, mirroring the legacy cgen
                    // harness. The AOT-leg baseline uses the script
                    // vocabulary's power_cycle (adds the "[crash]" line),
                    // matching Reactor::restart.
                    if (crash_power_cycles) {
                        inst.power_cycle();
                    } else {
                        inst.reset();
                        inst.boot();
                    }
                    break;
            }
        }
        while (inst.status() == rt::Engine::Status::Running && inst.step_async()) {}
        inst.finish_observation();
        r.status = inst.status();
        r.trace = inst.trace();
        // The cgen harness exits with (int)result truncated by the OS to
        // one byte; fold the interpreter result the same way.
        r.exit_code = static_cast<int>(static_cast<uint8_t>(inst.result().as_int()));
    } catch (const std::exception& e) {
        r.error = true;
        r.error_msg = e.what();
    }
    return r;
}

struct CgenRun {
    std::vector<std::string> lines;
    int exit_code = 0;
    bool build_error = false;
    bool run_error = false;
    std::string error_msg;
};

CgenRun run_cgen(const flat::CompiledProgram& cp, const std::string& script,
                 const DiffOptions& opt, const std::string& base,
                 const std::string& trace_path = "") {
    CgenRun out;
    std::string c_path = base + ".c";
    std::string bin_path = base + ".bin";
    std::string in_path = base + ".in";
    std::string out_path = base + ".out";
    std::string err_path = base + ".cc.err";
    {
        std::ofstream f(c_path);
        cgen::CgenOptions co;
        co.reentrant = opt.cgen_reentrant;
        f << cgen::emit_c(cp, co);
    }
    {
        std::ofstream f(in_path);
        f << script;
    }
    std::string cc = opt.cc + " -o " + bin_path + " " + c_path + " 2>" + err_path;
    if (std::system(cc.c_str()) != 0) {
        out.build_error = true;
        std::ifstream f(err_path);
        std::stringstream ss;
        ss << f.rdbuf();
        out.error_msg = ss.str();
        return out;
    }
    // `timeout` guards against an emitted C scheduler that spins; generated
    // programs are bounded by construction, so 20s means "hung".
    std::string run = "timeout 20 " + bin_path + " < " + in_path + " > " + out_path;
    if (!trace_path.empty()) run = "CEU_TRACE=" + trace_path + " " + run;
    int rc = std::system(run.c_str());
    if (WIFEXITED(rc)) {
        out.exit_code = WEXITSTATUS(rc);
        if (out.exit_code == 124) {  // timeout(1)'s kill status
            out.run_error = true;
            out.error_msg = "compiled program timed out";
        }
    } else {
        out.run_error = true;
        out.error_msg = "compiled program crashed (signal)";
    }
    std::ifstream f(out_path);
    std::string line;
    while (std::getline(f, line)) out.lines.push_back(line);
    if (!opt.keep_artifacts) {
        for (const std::string& p : {c_path, bin_path, in_path, out_path, err_path}) {
            ::unlink(p.c_str());
        }
    }
    return out;
}

struct AotRun {
    std::vector<std::string> trace;
    int exit_code = 0;
    rt::Engine::Status status = rt::Engine::Status::Loaded;
    bool build_error = false;  // cc / dlopen / descriptor validation failed
    bool error = false;        // the reactor leg itself threw
    std::string error_msg;
};

/// AOT-in-reactor leg: the re-entrant cgen emission compiled to a .so,
/// loaded, and driven through a 1-member Reactor with the same script
/// semantics as run_interp — every delivery crosses the fleet machinery
/// (mailbox + ticket order, fleet timer wheel, after-reaction re-indexing),
/// so this leg checks the descriptor ABI *and* the reactor's compiled-member
/// plumbing at once. Intermediate go_time instants the interpreter sees may
/// be elided here (the wheel only syncs members with due work); that is
/// trace-transparent because timers fire per expired deadline group with
/// logical timestamps, not per go_time call.
AotRun run_aot(const std::shared_ptr<const flat::CompiledProgram>& cp,
               const env::Script& script, const DiffOptions& opt) {
    AotRun r;
    aot::BuildOptions bopt;
    bopt.cc = opt.aot_cc;
    bopt.work_dir = opt.workdir;
    bopt.keep_artifacts = opt.keep_artifacts;
    std::string err;
    aot::ProgramHandle h = aot::FleetImage::build_one(cp, bopt, &err);
    if (!h) {
        r.build_error = true;
        r.error_msg = err;
        return r;
    }
    try {
        reactor::ReactorConfig rcfg;
        rcfg.workers = 1;
        rcfg.collect_traces = true;
        // The interpreter baseline only steps async bodies at the script's
        // explicit idle points (AsyncIdle items); a fleet reactor normally
        // grants slices every round. Park the async budget and raise it
        // only where run_interp would call step_async, or the legs diverge
        // on when an async's result lands.
        rcfg.async_slices_per_round = 0;
        reactor::Reactor rx(rcfg);
        host::Config hcfg;
        hcfg.aot = h;
        reactor::InstanceId id = rx.add_instance(cp, hcfg);
        rx.boot();
        const host::Instance& inst = rx.instance(id);
        for (const env::ScriptItem& item : script.items()) {
            if (inst.status() != rt::Engine::Status::Running) break;
            switch (item.kind) {
                case env::ScriptItem::Kind::Event:
                    // Unknown events report UnknownEvent and deliver
                    // nothing — same discard as run_interp's try_inject.
                    rx.inject(id, item.event, item.value);
                    rx.run_round();
                    break;
                case env::ScriptItem::Kind::Advance: {
                    // Same target arithmetic as Instance::advance: measured
                    // from the member's own instant, which may be ahead of
                    // the fleet clock after asyncs emitted time.
                    Micros target = std::max(rx.now(), inst.now()) + item.us;
                    rx.advance(target - rx.now());
                    break;
                }
                case env::ScriptItem::Kind::AsyncIdle:
                    rx.set_async_slices_per_round(1);
                    for (int i = 0;
                         i < 10'000'000 && inst.status() == rt::Engine::Status::Running &&
                         inst.has_async_work();
                         ++i) {
                        rx.run_round();
                    }
                    rx.set_async_slices_per_round(0);
                    break;
                case env::ScriptItem::Kind::Crash:
                    rx.restart(id);
                    break;
            }
        }
        rx.set_async_slices_per_round(1);
        while (inst.status() == rt::Engine::Status::Running && inst.has_async_work()) {
            rx.run_round();
        }
        r.status = inst.status();
        r.trace = inst.trace();
        r.exit_code = static_cast<int>(static_cast<uint8_t>(inst.result().as_int()));
    } catch (const std::exception& e) {
        r.error = true;
        r.error_msg = e.what();
    }
    return r;
}

std::string first_divergence(const std::vector<std::string>& a,
                             const std::vector<std::string>& b, const std::string& la,
                             const std::string& lb) {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
        if (a[i] != b[i]) {
            return "line " + std::to_string(i + 1) + ": " + la + " \"" + a[i] + "\" vs " +
                   lb + " \"" + b[i] + "\"";
        }
    }
    if (a.size() != b.size()) {
        return la + " has " + std::to_string(a.size()) + " lines, " + lb + " has " +
               std::to_string(b.size());
    }
    return "";
}

/// Witness-independent identity of a conflict: kind + subject + the
/// normalized (unordered) location pair. Occurrence counts and witnesses
/// legitimately differ between the product space and a composition.
std::string conflict_key(const dfa::Conflict& c) {
    auto loc_str = [](const SourceLoc& l) {
        return std::to_string(l.line) + ":" + std::to_string(l.col);
    };
    const SourceLoc* lo = &c.loc_a;
    const SourceLoc* hi = &c.loc_b;
    if (std::make_pair(hi->line, hi->col) < std::make_pair(lo->line, lo->col)) {
        std::swap(lo, hi);
    }
    return std::to_string(static_cast<int>(c.kind)) + "|" + c.what + "|" +
           loc_str(*lo) + "|" + loc_str(*hi);
}

/// The modular-vs-monolithic equivalence oracle (empty = equivalent): on
/// complete explorations the composed conflict set must equal the
/// whole-program one, and composition must never *lose* completeness the
/// monolithic exploration achieved (groups explore subsets of the product).
std::string modular_mismatch(const dfa::Dfa& d, const analysis::ModularOutcome& mo) {
    if (d.complete() && !mo.complete) {
        return "composed analysis incomplete where monolithic is complete";
    }
    if (!d.complete()) return {};  // no monolithic verdict to compare against
    std::set<std::string> mono, comp;
    for (const dfa::Conflict& c : d.conflicts()) mono.insert(conflict_key(c));
    for (const dfa::Conflict& c : mo.conflicts) comp.insert(conflict_key(c));
    if (mono == comp) return {};
    for (const std::string& k : mono) {
        if (!comp.count(k)) return "conflict only in monolithic verdict: " + k;
    }
    for (const std::string& k : comp) {
        if (!mono.count(k)) return "conflict only in composed verdict: " + k;
    }
    return "conflict sets differ";
}

std::string unique_base(const DiffOptions& opt) {
    static int counter = 0;
    std::string dir = opt.workdir;
    if (dir.empty()) {
        const char* t = std::getenv("TMPDIR");
        dir = (t != nullptr && *t != '\0') ? t : "/tmp";
    }
    if (dir.back() != '/') dir += '/';
    return dir + "ceu_diff_" + std::to_string(getpid()) + "_" + std::to_string(counter++);
}

}  // namespace

const char* DiffResult::kind_name(Kind k) {
    switch (k) {
        case Kind::Agree: return "agree";
        case Kind::CompileError: return "compile-error";
        case Kind::DfaRefused: return "dfa-refused";
        case Kind::DfaUnknown: return "dfa-unknown";
        case Kind::TieBreakDiverged: return "tiebreak-diverged";
        case Kind::CgenDiverged: return "cgen-diverged";
        case Kind::CgenBuildError: return "cgen-build-error";
        case Kind::EngineError: return "engine-error";
        case Kind::ModularDiverged: return "modular-diverged";
        case Kind::AotDiverged: return "aot-diverged";
    }
    return "?";
}

DiffResult run_differential(const std::string& source, const env::Script& script,
                            const DiffOptions& opt) {
    DiffResult res;

    flat::CompiledProgram cp;
    Diagnostics diags;
    if (!flat::compile_checked(source, &cp, diags, "<testgen>")) {
        res.kind = DiffResult::Kind::CompileError;
        res.detail = diags.str();
        return res;
    }

    // DFA verdict first: it decides which checks below are hard asserts.
    dfa::DfaOptions dopt;
    dopt.max_states = opt.max_states;
    dfa::Dfa d = dfa::Dfa::build(cp, dopt);
    res.dfa_states = d.state_count();
    res.dfa_conflicts = d.conflicts().size();
    const bool verdict_ok = d.deterministic() && d.complete();
    const bool verdict_unknown = d.deterministic() && !d.complete();

    if (opt.check_modular) {
        analysis::ModularOptions mopt;
        mopt.explore.max_states = opt.max_states;
        analysis::ModularOutcome mo = analysis::explore_modular(cp, mopt);
        std::string mismatch = modular_mismatch(d, mo);
        if (!mismatch.empty()) {
            res.kind = DiffResult::Kind::ModularDiverged;
            res.detail = mismatch;
            return res;
        }
    }

    InterpRun fifo = run_interp(cp, script, rt::EngineOptions::TieBreak::Fifo);
    InterpRun lifo = run_interp(cp, script, rt::EngineOptions::TieBreak::Lifo);
    if (fifo.error || lifo.error) {
        res.kind = DiffResult::Kind::EngineError;
        res.detail = fifo.error ? fifo.error_msg : lifo.error_msg;
        return res;
    }
    res.fifo_trace = fifo.trace;
    res.lifo_trace = lifo.trace;
    res.fifo_exit = fifo.exit_code;
    res.lifo_exit = lifo.exit_code;

    const bool tie_same = fifo.trace == lifo.trace && fifo.exit_code == lifo.exit_code &&
                          fifo.status == lifo.status;

    CgenRun c;
    bool cgen_same = true;
    if (opt.run_cgen) {
        c = run_cgen(cp, script_text(script), opt, unique_base(opt));
        if (c.build_error) {
            res.kind = DiffResult::Kind::CgenBuildError;
            res.detail = c.error_msg;
            return res;
        }
        res.cgen_trace = c.lines;
        res.cgen_exit = c.exit_code;
        // Compare against FIFO: the emitted C uses FIFO track order. The
        // exit code only binds when the program terminated (a still-running
        // program's C main returns the result slot's current value, while
        // the interpreter reports status separately).
        cgen_same = !c.run_error && c.lines == fifo.trace &&
                    (fifo.status != rt::Engine::Status::Terminated ||
                     c.exit_code == fifo.exit_code);
    }

    AotRun a;
    bool aot_same = true;
    bool aot_ran = false;
    if (opt.run_cgen && opt.check_aot) {
        bool has_crash = false;
        for (const env::ScriptItem& item : script.items()) {
            has_crash |= item.kind == env::ScriptItem::Kind::Crash;
        }
        auto scp = std::make_shared<const flat::CompiledProgram>(
            flat::compile(source));
        a = run_aot(scp, script, opt);
        if (a.build_error) {
            // Toolchain / loader failures fold into the build-error kind the
            // shrinker and sweep reports already classify; the "aot: "
            // detail prefix tells the legs apart.
            res.kind = DiffResult::Kind::CgenBuildError;
            res.detail = a.error_msg;
            return res;
        }
        aot_ran = true;
        res.aot_trace = a.trace;
        res.aot_exit = a.exit_code;
        // Crash items power-cycle through Reactor::restart (one extra
        // "[crash]" annotation line), so the baseline for such scripts is
        // an interpreter rerun with the same crash vocabulary. Generated
        // sweeps never contain Crash and compare against `fifo` directly.
        const InterpRun* base = &fifo;
        InterpRun crash_fifo;
        if (has_crash) {
            crash_fifo = run_interp(cp, script, rt::EngineOptions::TieBreak::Fifo,
                                    nullptr, /*crash_power_cycles=*/true);
            base = &crash_fifo;
        }
        aot_same = !a.error && a.trace == base->trace && a.status == base->status &&
                   (base->status != rt::Engine::Status::Terminated ||
                    a.exit_code == base->exit_code);
    }

    if (verdict_ok) {
        if (!tie_same) {
            res.kind = DiffResult::Kind::TieBreakDiverged;
            res.detail = first_divergence(fifo.trace, lifo.trace, "fifo", "lifo");
            if (res.detail.empty()) {
                res.detail = "exit/status differ: fifo=" + std::to_string(fifo.exit_code) +
                             " lifo=" + std::to_string(lifo.exit_code);
            }
            return res;
        }
        if (!cgen_same) {
            res.kind = DiffResult::Kind::CgenDiverged;
            res.detail = c.run_error
                             ? c.error_msg
                             : first_divergence(c.lines, fifo.trace, "cgen", "interp");
            if (res.detail.empty()) {
                res.detail = "exit codes differ: cgen=" + std::to_string(c.exit_code) +
                             " interp=" + std::to_string(fifo.exit_code);
            }
            return res;
        }
        if (!aot_same) {
            res.kind = DiffResult::Kind::AotDiverged;
            res.detail =
                a.error ? a.error_msg
                        : first_divergence(a.trace, fifo.trace, "aot", "interp");
            if (res.detail.empty()) {
                res.detail = "exit/status differ: aot=" + std::to_string(a.exit_code) +
                             " interp=" + std::to_string(fifo.exit_code);
            }
            return res;
        }
        res.kind = DiffResult::Kind::Agree;
        return res;
    }

    // Refused / unknown: record whether schedulers actually disagreed, but
    // a C scheduler crash or hang is a hard failure regardless of verdict.
    if (opt.run_cgen && c.run_error) {
        res.kind = DiffResult::Kind::CgenDiverged;
        res.detail = c.error_msg;
        return res;
    }
    if (aot_ran && a.error) {
        res.kind = DiffResult::Kind::AotDiverged;
        res.detail = a.error_msg;
        return res;
    }
    res.kind = verdict_unknown ? DiffResult::Kind::DfaUnknown : DiffResult::Kind::DfaRefused;
    res.refused_diverged = !tie_same || !cgen_same || (aot_ran && !aot_same);
    return res;
}

TraceRun interp_chrome_trace(const std::string& source, const env::Script& script) {
    TraceRun out;
    flat::CompiledProgram cp;
    Diagnostics diags;
    if (!flat::compile_checked(source, &cp, diags, "<trace>")) {
        out.error = diags.str();
        return out;
    }
    obs::ChromeTraceSink sink;
    InterpRun r = run_interp(cp, script, rt::EngineOptions::TieBreak::Fifo, &sink);
    if (r.error) {
        out.error = r.error_msg;
        return out;
    }
    out.ok = true;
    out.trace = sink.text();
    return out;
}

TraceRun cgen_chrome_trace(const std::string& source, const env::Script& script,
                           const DiffOptions& opt) {
    TraceRun out;
    flat::CompiledProgram cp;
    Diagnostics diags;
    if (!flat::compile_checked(source, &cp, diags, "<trace>")) {
        out.error = diags.str();
        return out;
    }
    std::string base = unique_base(opt);
    std::string trace_path = base + ".trace.json";
    CgenRun c = run_cgen(cp, script_text(script), opt, base, trace_path);
    if (c.build_error || c.run_error) {
        out.error = c.error_msg;
        ::unlink(trace_path.c_str());
        return out;
    }
    std::ifstream f(trace_path);
    std::stringstream ss;
    ss << f.rdbuf();
    out.trace = ss.str();
    out.ok = f.good() || !out.trace.empty();
    if (!out.ok) out.error = "compiled program produced no trace file";
    if (!opt.keep_artifacts) ::unlink(trace_path.c_str());
    return out;
}

}  // namespace ceu::testgen
