// ceuc — the Céu compiler driver.
//
//   ceuc file.ceu                 compile + temporal analysis (report only)
//   ceuc --run file.ceu           compile, analyze, then run; input script
//                                 read from stdin (see below)
//   ceuc --emit-c file.ceu        print the generated single-threaded C
//   ceuc --disasm file.ceu        print the flat-program disassembly
//   ceuc --dfa-dot file.ceu       print the temporal-analysis DFA (Graphviz)
//   ceuc --flow-dot file.ceu      print the flow graph (Graphviz)
//   ceuc --no-analysis ...        skip the temporal analysis
//
// Input script protocol (one item per line, matching the C harness; see
// env::Script::parse for the full grammar):
//   E <event> [value]   deliver an input event
//   T <micros|TIME>     advance wall-clock time ("T 500ms" also works)
//   A                   run async blocks until idle
//   C                   crash: power-cycle the engine (time persists)
//   Q                   stop reading the script
//   fault <plan-line>   accumulate a fault plan (network harnesses only)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "cgen/cgen.hpp"
#include "codegen/flatten.hpp"
#include "demos/demos.hpp"
#include "dfa/dfa.hpp"
#include "env/driver.hpp"
#include "fault/plan.hpp"
#include "flow/flowgraph.hpp"

namespace {

using namespace ceu;

int usage() {
    std::fprintf(stderr,
                 "usage: ceuc [--run|--emit-c|--disasm|--dfa-dot|--flow-dot] "
                 "[--no-analysis] <file.ceu>\n");
    return 2;
}

std::string read_file(const std::string& path) {
    if (path == "-") {
        std::ostringstream os;
        os << std::cin.rdbuf();
        return os.str();
    }
    std::ifstream f(path);
    if (!f) throw std::runtime_error("cannot open " + path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

int run_program(const flat::CompiledProgram& cp) {
    std::ostringstream script_text;
    script_text << std::cin.rdbuf();

    Diagnostics diags;
    env::Script script;
    if (!env::Script::parse(script_text.str(), &script, diags)) {
        std::fprintf(stderr, "%s", diags.str().c_str());
        return 2;
    }
    if (!script.fault_plan_text().empty()) {
        // No simulated network here, but a typo'd plan should not pass
        // silently: validate it and say it goes unused.
        fault::FaultPlan plan;
        if (!fault::parse_plan(script.fault_plan_text(), &plan, diags)) {
            std::fprintf(stderr, "%s", diags.str().c_str());
            return 2;
        }
        std::fprintf(stderr,
                     "note: fault plan parsed but unused (ceuc --run drives a "
                     "single engine, not a network)\n");
    }

    env::Driver driver(cp);
    driver.engine().on_trace = [](const std::string& line) {
        std::printf("%s\n", line.c_str());
    };
    // Dynamic errors come back as structured diagnostics with a source
    // location instead of an unwound exception string.
    rt::Engine::Status status = driver.run(script, diags);
    if (!diags.ok()) {
        std::fprintf(stderr, "%s", diags.str().c_str());
        return 1;
    }
    if (status == rt::Engine::Status::Faulted) {
        const auto& f = driver.engine().fault();
        std::fprintf(stderr, "engine faulted: %s\n",
                     f ? f->message.c_str() : "(unknown)");
        return 1;
    }
    if (status == rt::Engine::Status::Terminated) {
        std::fprintf(stderr, "program terminated with %lld\n",
                     static_cast<long long>(driver.engine().result().as_int()));
        return static_cast<int>(driver.engine().result().as_int());
    }
    std::fprintf(stderr, "program still awaiting (%d trails)\n",
                 driver.engine().active_gate_count());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    enum class Mode { Check, Run, EmitC, Disasm, DfaDot, FlowDot };
    Mode mode = Mode::Check;
    bool analysis = true;
    std::string path;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--run") mode = Mode::Run;
        else if (a == "--emit-c") mode = Mode::EmitC;
        else if (a == "--disasm") mode = Mode::Disasm;
        else if (a == "--dfa-dot") mode = Mode::DfaDot;
        else if (a == "--flow-dot") mode = Mode::FlowDot;
        else if (a == "--no-analysis") analysis = false;
        else if (a == "--help" || a == "-h") return usage();
        else if (!a.empty() && a[0] == '-' && a != "-") return usage();
        else path = a;
    }
    if (path.empty()) return usage();

    try {
        std::string source = read_file(path);
        flat::CompiledProgram cp;
        Diagnostics diags;
        if (!flat::compile_checked(source, &cp, diags, path)) {
            std::fprintf(stderr, "%s", diags.str().c_str());
            return 1;
        }
        for (const auto& d : diags.all()) {
            std::fprintf(stderr, "%s\n", d.str().c_str());
        }

        if (analysis) {
            dfa::Dfa d = dfa::Dfa::build(cp);
            if (!d.deterministic()) {
                std::fprintf(stderr, "temporal analysis refused the program:\n%s",
                             d.report().c_str());
                if (mode != Mode::DfaDot) return 1;
            }
            if (mode == Mode::DfaDot) {
                std::printf("%s", d.to_dot(path).c_str());
                return d.deterministic() ? 0 : 1;
            }
            if (mode == Mode::Check) {
                std::printf("%s: OK (%zu DFA states, %zu instructions, %d slots, "
                            "%zu gates)\n",
                            path.c_str(), d.state_count(), cp.flat.code.size(),
                            cp.flat.data_size, cp.flat.gates.size());
                return 0;
            }
        } else if (mode == Mode::Check) {
            std::printf("%s: parsed and flattened (analysis skipped)\n", path.c_str());
            return 0;
        } else if (mode == Mode::DfaDot) {
            std::fprintf(stderr, "--dfa-dot requires the analysis\n");
            return 2;
        }

        switch (mode) {
            case Mode::Run:
                return run_program(cp);
            case Mode::EmitC:
                std::printf("%s", cgen::emit_c(cp).c_str());
                return 0;
            case Mode::Disasm:
                std::printf("%s", flat::disassemble(cp.flat).c_str());
                return 0;
            case Mode::FlowDot:
                std::printf("%s", flow::build_flow_graph(cp).to_dot(path).c_str());
                return 0;
            default:
                return 0;
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "ceuc: %s\n", e.what());
        return 1;
    }
}
