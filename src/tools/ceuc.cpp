// ceuc — the Céu compiler driver.
//
//   ceuc file.ceu                 compile + temporal analysis (report only)
//   ceuc --run file.ceu           compile, analyze, then run; input script
//                                 read from stdin (see below)
//   ceuc --emit-c file.ceu        print the generated single-threaded C
//   ceuc --disasm file.ceu        print the flat-program disassembly
//   ceuc --dfa-dot file.ceu       print the temporal-analysis DFA (Graphviz)
//   ceuc --flow-dot file.ceu      print the flow graph (Graphviz)
//   ceuc --lint file.ceu          temporal analysis + lint passes
//   ceuc --explain file.ceu       on refusal, print each conflict's witness
//                                 chain (stderr) and a replayable script
//                                 reaching the first conflict (stdout)
//   ceuc --gen.fuzz N --gen.seed S  conformance fuzzing: generate N seeded
//                                 programs from seed S, cross-check the
//                                 interpreter (FIFO+LIFO), the compiled
//                                 cgen output and the DFA verdict; shrink
//                                 and report divergences (exit 1 if any)
//   ceuc --gen.dump --gen.seed S  print the generated program + script for
//                                 one seed (corpus format, for replaying)
//   ceuc --no-analysis ...        skip the temporal analysis
//
// Run options:
//   --trace=FILE                  write a Chrome trace_event JSON of every
//                                 reaction chain (load in about:tracing /
//                                 Perfetto). Byte-identical with the trace
//                                 the cgen-compiled binary writes under
//                                 CEU_TRACE=FILE.
//   --stats=FILE                  write a ProcessStats JSON snapshot after
//                                 the run ("-" = stderr)
//   --checkpoint=FILE             after the script drains, serialize the
//                                 full engine + host state to FILE
//                                 (versioned binary, see docs/EMBEDDING.md)
//   --restore=FILE                load FILE (taken from the same program)
//                                 instead of booting, then run the script
//                                 as a continuation
//
// Analysis options (dotted keys are canonical; the historical
// --analysis-jobs, --max-states, --strict and --fail-fast spellings still
// work but print a one-line deprecation warning):
//   --analysis.jobs N             explore the DFA with N worker threads
//   --analysis.max-states N       state budget (default 20000)
//   --analysis.strict             incomplete analysis => exit 1
//   --analysis.fail-fast          stop exploring at the first conflict
//   --analysis.modular            partition at the top-level plain par and
//                                 compose per-arm DFAs instead of exploring
//                                 the product space (arms whose interfaces
//                                 interleave fall back to joint exploration;
//                                 see docs/LANGUAGE.md)
//   --analysis.cache-dir DIR      persistent module-DFA cache keyed by
//                                 content hash (implies --analysis.modular):
//                                 repeat runs re-explore only changed
//                                 modules. --cache-dir is the deprecated
//                                 spelling.
//
// Fuzz options (dotted keys are canonical; --fuzz-out etc. are deprecated):
//   --fuzz.out DIR                write shrunk failures to DIR as corpus
//                                 files (default: report only)
//   --fuzz.cc CMD                 host C compiler command (default
//                                 "cc -std=c11 -O1")
//   --fuzz.no-cgen                skip the compile-and-run C leg
//   --fuzz.no-shrink              report divergences unshrunk
//
// Every subcommand honors --diag-format=text|json (JSON: one object per
// diagnostic on stdout, for CI gating) and the exit-code contract:
//   0  success (--run: the program terminated or is still awaiting; the
//      program's own result value is reported on stderr, not as the exit
//      code — scripts that need it should parse the stats snapshot)
//   1  diagnostics reported (compile error, refusal, divergence, runtime
//      error, engine fault)
//   2  command-line usage error
//
// Input script protocol (one item per line, matching the C harness; see
// env::Script::parse for the full grammar):
//   E <event> [value]   deliver an input event
//   T <micros|TIME>     advance wall-clock time ("T 500ms" also works)
//   A                   run async blocks until idle
//   C                   crash: power-cycle the engine (time persists)
//   Q                   stop reading the script
//   fault <plan-line>   accumulate a fault plan (network harnesses only)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/explore.hpp"
#include "aot/aot.hpp"
#include "analysis/lint.hpp"
#include "analysis/modular.hpp"
#include "analysis/witness.hpp"
#include "cgen/cgen.hpp"
#include "codegen/flatten.hpp"
#include "dfa/dfa.hpp"
#include "fault/plan.hpp"
#include "flow/flowgraph.hpp"
#include "host/instance.hpp"
#include "obs/obs.hpp"
#include "testgen/fuzz.hpp"

namespace {

using namespace ceu;

int usage() {
    std::fprintf(
        stderr,
        "usage: ceuc [--run|--emit-c|--disasm|--dfa-dot|--flow-dot|--lint|"
        "--explain]\n"
        "            [--no-analysis] [--analysis.jobs N] [--analysis.max-states N]\n"
        "            [--analysis.strict] [--analysis.fail-fast]\n"
        "            [--analysis.modular] [--analysis.cache-dir DIR]\n"
        "            [--diag-format=text|json] [--lint-only=IDs] "
        "[--lint-disable=IDs]\n"
        "            [--trace=FILE] [--stats=FILE] [--checkpoint=FILE]\n"
        "            [--restore=FILE] [--backend=interp|aot|mixed] [--aot-cc=CMD]\n"
        "            <file.ceu>\n"
        "       ceuc --gen.fuzz N [--gen.seed S] [--fuzz.out DIR] [--fuzz.cc CMD]\n"
        "            [--fuzz.no-cgen] [--fuzz.no-shrink] [--analysis.max-states N]\n"
        "       ceuc --gen.dump [--gen.seed S]\n");
    return 2;
}

std::vector<std::string> split_ids(const std::string& csv) {
    std::vector<std::string> out;
    std::string cur;
    for (char c : csv) {
        if (c == ',') {
            if (!cur.empty()) out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
}

std::string read_file(const std::string& path) {
    if (path == "-") {
        std::ostringstream os;
        os << std::cin.rdbuf();
        return os.str();
    }
    std::ifstream f(path);
    if (!f) throw std::runtime_error("cannot open " + path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

void json_escape(std::ostringstream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

/// One compiler/runtime diagnostic in the same shape as analysis
/// Finding::json, with "pass" naming the producing stage.
std::string diag_json(const Diagnostic& d, const std::string& pass,
                      const std::string& file) {
    std::ostringstream os;
    os << "{\"pass\":";
    json_escape(os, pass);
    os << ",\"severity\":\"" << severity_name(d.severity) << "\",\"file\":";
    json_escape(os, file);
    os << ",\"line\":" << d.loc.line << ",\"col\":" << d.loc.col << ",\"message\":";
    json_escape(os, d.message);
    os << "}";
    return os.str();
}

/// Dumps diagnostics honoring --diag-format: text goes to stderr, JSON goes
/// to stdout one object per line (the machine-readable channel).
void print_diags(const Diagnostics& diags, const std::string& pass,
                 const std::string& file, bool json) {
    if (json) {
        for (const Diagnostic& d : diags.all()) {
            std::printf("%s\n", diag_json(d, pass, file).c_str());
        }
    } else {
        std::fprintf(stderr, "%s", diags.str().c_str());
    }
}

/// --backend selects how --run executes the program. `interp` is the
/// rt::Engine interpreter; `aot` compiles the program into a shared object
/// (cgen re-entrant mode) and drives the compiled context; `mixed` prefers
/// aot when a host C compiler is available and quietly uses the interpreter
/// otherwise. Under `aot` an unavailable toolchain (or any build/load
/// failure) degrades to the interpreter too, but loudly: a "pass":"aot"
/// diagnostic reports why, so CI can tell a fallback from a clean aot run.
enum class RunBackend { Interp, Aot, Mixed };

struct RunOptions {
    std::string trace_path;  // --trace=FILE: Chrome trace_event JSON
    std::string stats_path;  // --stats=FILE: ProcessStats snapshot ("-" = stderr)
    std::string checkpoint_path;  // --checkpoint=FILE: snapshot after the run
    std::string restore_path;     // --restore=FILE: resume from a snapshot
    RunBackend backend = RunBackend::Interp;
    std::string aot_cc;  // --aot-cc=CMD: compiler for the aot shared object
};

/// AOT toolchain trouble is an environmental condition, not a program
/// error: it is reported as a warning on its own pass and the run falls
/// back to the interpreter, keeping the exit-code contract intact.
std::string aot_fallback_json(const std::string& msg, const std::string& file) {
    std::ostringstream os;
    os << "{\"pass\":\"aot\",\"severity\":\"warning\",\"file\":";
    json_escape(os, file);
    os << ",\"line\":0,\"col\":0,\"message\":";
    json_escape(os, msg);
    os << "}";
    return os.str();
}

/// Engine faults carry a source location; report them in the same JSON
/// shape as every other diagnostic so CI can gate on `"pass":"fault"`.
std::string fault_json(const rt::Engine::FaultInfo& f, const std::string& file) {
    std::ostringstream os;
    os << "{\"pass\":\"fault\",\"severity\":\"error\",\"file\":";
    json_escape(os, file);
    os << ",\"line\":" << f.loc.line << ",\"col\":" << f.loc.col
       << ",\"at_reaction\":" << f.at_reaction << ",\"message\":";
    json_escape(os, f.message);
    os << "}";
    return os.str();
}

int run_program(flat::CompiledProgram cp_in, const std::string& path,
                const RunOptions& ropt, bool json) {
    // Shared ownership from the start: the aot image build and the
    // instance both want to pin the program.
    auto cp = std::make_shared<const flat::CompiledProgram>(std::move(cp_in));
    std::ostringstream script_text;
    script_text << std::cin.rdbuf();

    Diagnostics diags;
    env::Script script;
    if (!env::Script::parse(script_text.str(), &script, diags)) {
        print_diags(diags, "script", "<stdin>", json);
        return 1;
    }
    if (!script.fault_plan_text().empty()) {
        // No simulated network here, but a typo'd plan should not pass
        // silently: validate it and say it goes unused.
        fault::FaultPlan plan;
        if (!fault::parse_plan(script.fault_plan_text(), &plan, diags)) {
            print_diags(diags, "fault-plan", "<stdin>", json);
            return 1;
        }
        std::fprintf(stderr,
                     "note: fault plan parsed but unused (ceuc --run drives a "
                     "single engine, not a network)\n");
    }

    // Trap dynamic errors: the engine parks Faulted with a structured
    // FaultInfo (location + reaction ordinal) instead of unwinding, which
    // is what the exit contract and --diag-format=json report from.
    host::Config hcfg;
    hcfg.engine.trap_faults = true;
    if (ropt.backend != RunBackend::Interp) {
        aot::BuildOptions bopt;
        if (!ropt.aot_cc.empty()) bopt.cc = ropt.aot_cc;
        std::string err;
        aot::ProgramHandle h = aot::FleetImage::build_one(cp, bopt, &err);
        if (h) {
            hcfg.aot = h;
        } else if (ropt.backend == RunBackend::Aot) {
            if (json) {
                std::printf("%s\n", aot_fallback_json(err, path).c_str());
            }
            std::fprintf(stderr,
                         "ceuc: aot backend unavailable (%s); running "
                         "interpreted\n",
                         err.c_str());
        }
    }
    host::Instance inst(cp, hcfg);
    inst.on_trace_line = [](const std::string& line) {
        std::printf("%s\n", line.c_str());
    };
    obs::ChromeTraceSink trace_sink;
    if (!ropt.trace_path.empty()) inst.add_sink(&trace_sink);
    if (!ropt.stats_path.empty()) inst.observe_stats();

    if (!ropt.restore_path.empty()) {
        std::ifstream f(ropt.restore_path, std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "ceuc: cannot read %s\n", ropt.restore_path.c_str());
            return 1;
        }
        std::ostringstream os;
        os << f.rdbuf();
        const std::string& raw = os.str();
        std::vector<uint8_t> blob(raw.begin(), raw.end());
        inst.load(blob);  // throws on version/program mismatch -> caught in main
    }

    // Dynamic errors come back as structured diagnostics with a source
    // location instead of an unwound exception string.
    rt::Engine::Status status = ropt.restore_path.empty()
                                    ? inst.run(script, diags)
                                    : inst.resume(script, diags);
    inst.finish_observation();

    if (!ropt.checkpoint_path.empty()) {
        std::vector<uint8_t> blob = inst.save();
        std::ofstream f(ropt.checkpoint_path, std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "ceuc: cannot write %s\n",
                         ropt.checkpoint_path.c_str());
            return 1;
        }
        f.write(reinterpret_cast<const char*>(blob.data()),
                static_cast<std::streamsize>(blob.size()));
    }

    if (!ropt.trace_path.empty()) {
        std::ofstream f(ropt.trace_path, std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "ceuc: cannot write %s\n", ropt.trace_path.c_str());
            return 1;
        }
        f << trace_sink.text();
    }
    if (!ropt.stats_path.empty()) {
        std::string stats = inst.snapshot().to_json();
        if (ropt.stats_path == "-") {
            std::fprintf(stderr, "%s\n", stats.c_str());
        } else {
            std::ofstream f(ropt.stats_path, std::ios::binary);
            if (!f) {
                std::fprintf(stderr, "ceuc: cannot write %s\n",
                             ropt.stats_path.c_str());
                return 1;
            }
            f << stats << "\n";
        }
    }

    if (!diags.ok()) {
        print_diags(diags, "runtime", path, json);
        return 1;
    }
    if (status == rt::Engine::Status::Faulted) {
        // Compiled contexts fault without a structured FaultInfo (no
        // interpreter engine to ask); the status itself is the report.
        const std::optional<rt::Engine::FaultInfo> f =
            inst.is_compiled() ? std::nullopt : inst.engine().fault();
        if (json && f) {
            std::printf("%s\n", fault_json(*f, path).c_str());
        }
        std::fprintf(stderr, "engine faulted: %s\n",
                     f ? f->message.c_str()
                       : (inst.is_compiled() ? "(compiled context)" : "(unknown)"));
        return 1;
    }
    if (status == rt::Engine::Status::Terminated) {
        // Exit-code contract: 0 means "ran cleanly", independent of the
        // program's own result value (which is reported here instead —
        // the historical `exit(result)` aliased result 1 with "faulted").
        std::fprintf(stderr, "program terminated with %lld\n",
                     static_cast<long long>(inst.result().as_int()));
        return 0;
    }
    if (inst.is_compiled()) {
        // Gate occupancy is interpreter introspection; the compiled
        // context only reports its status.
        std::fprintf(stderr, "program still awaiting\n");
    } else {
        std::fprintf(stderr, "program still awaiting (%d trails)\n",
                     inst.engine().active_gate_count());
    }
    return 0;
}

/// The dotted spellings are canonical; the historical un-dotted names are
/// deprecated aliases. The parser matches the internal (historical) names,
/// so dotted spellings are rewritten onto them — and a legacy spelling on
/// the command line earns a one-line deprecation warning, once per flag.
struct FlagAlias {
    const char* dotted;  ///< canonical, what --help prints
    const char* legacy;  ///< internal/parser name, deprecated on the CLI
    bool warned = false;
};

FlagAlias g_aliases[] = {
    {"--fuzz.out", "--fuzz-out"},
    {"--fuzz.cc", "--fuzz-cc"},
    {"--fuzz.no-cgen", "--fuzz-no-cgen"},
    {"--fuzz.no-shrink", "--fuzz-no-shrink"},
    {"--analysis.jobs", "--analysis-jobs"},
    {"--analysis.max-states", "--max-states"},
    {"--analysis.strict", "--strict"},
    {"--analysis.fail-fast", "--fail-fast"},
    {"--analysis.modular", "--modular"},
    {"--analysis.cache-dir", "--cache-dir"},
    {"--gen.fuzz", "--gen-fuzz"},
    {"--gen.dump", "--gen-dump"},
    {"--gen.seed", "--seed"},
};

std::string canonical_arg(const std::string& a) {
    for (FlagAlias& al : g_aliases) {
        if (a == al.dotted) return al.legacy;
        std::string dotted_eq = std::string(al.dotted) + "=";
        if (a.rfind(dotted_eq, 0) == 0)
            return std::string(al.legacy) + "=" + a.substr(dotted_eq.size());
        std::string legacy_eq = std::string(al.legacy) + "=";
        if (a == al.legacy || a.rfind(legacy_eq, 0) == 0) {
            if (!al.warned) {
                al.warned = true;
                std::fprintf(stderr,
                             "ceuc: warning: %s is deprecated; use %s\n",
                             al.legacy, al.dotted);
            }
            return a;
        }
    }
    return a;
}

}  // namespace

int main(int argc, char** argv) {
    enum class Mode { Check, Run, EmitC, Disasm, DfaDot, FlowDot, Lint, Explain };
    Mode mode = Mode::Check;
    bool analysis = true;
    bool strict = false;
    bool modular = false;
    std::string cache_dir;
    bool json = false;
    analysis::ExploreOptions eopt;
    analysis::LintOptions lopt;
    RunOptions ropt;
    std::string path;
    long gen_fuzz_count = -1;  // >= 0: fuzz mode
    bool gen_dump = false;
    uint64_t gen_seed = 0;
    testgen::FuzzOptions fopt;

    // `--flag value` and `--flag=value` are both accepted.
    auto value_of = [&](const std::string& a, const char* name, int& i,
                        std::string* out) -> bool {
        std::string prefix = std::string(name) + "=";
        if (a == name) {
            if (i + 1 >= argc) return false;
            *out = argv[++i];
            return true;
        }
        if (a.rfind(prefix, 0) == 0) {
            *out = a.substr(prefix.size());
            return true;
        }
        return false;
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = canonical_arg(argv[i]);
        std::string v;
        if (a == "--run") mode = Mode::Run;
        else if (a == "--emit-c") mode = Mode::EmitC;
        else if (a == "--disasm") mode = Mode::Disasm;
        else if (a == "--dfa-dot") mode = Mode::DfaDot;
        else if (a == "--flow-dot") mode = Mode::FlowDot;
        else if (a == "--lint") mode = Mode::Lint;
        else if (a == "--explain") mode = Mode::Explain;
        else if (a == "--no-analysis") analysis = false;
        else if (a == "--strict") strict = true;
        else if (a == "--fail-fast") eopt.stop_at_first_conflict = true;
        else if (a == "--modular") modular = true;
        else if (a.rfind("--cache-dir", 0) == 0 && value_of(a, "--cache-dir", i, &v)) {
            if (v.empty()) return usage();
            cache_dir = v;
            modular = true;  // a cache only makes sense for modular verdicts
        }
        else if (a.rfind("--analysis-jobs", 0) == 0 &&
                 value_of(a, "--analysis-jobs", i, &v)) {
            eopt.jobs = std::max(1, std::atoi(v.c_str()));
        } else if (a.rfind("--max-states", 0) == 0 && value_of(a, "--max-states", i, &v)) {
            long n = std::atol(v.c_str());
            if (n <= 0) return usage();
            eopt.max_states = static_cast<size_t>(n);
        } else if (a.rfind("--diag-format", 0) == 0 &&
                   value_of(a, "--diag-format", i, &v)) {
            if (v == "json") json = true;
            else if (v == "text") json = false;
            else return usage();
        } else if (a.rfind("--trace", 0) == 0 && value_of(a, "--trace", i, &v)) {
            if (v.empty()) return usage();
            ropt.trace_path = v;
        } else if (a.rfind("--stats", 0) == 0 && value_of(a, "--stats", i, &v)) {
            if (v.empty()) return usage();
            ropt.stats_path = v;
        } else if (a.rfind("--checkpoint", 0) == 0 &&
                   value_of(a, "--checkpoint", i, &v)) {
            if (v.empty()) return usage();
            ropt.checkpoint_path = v;
        } else if (a.rfind("--restore", 0) == 0 && value_of(a, "--restore", i, &v)) {
            if (v.empty()) return usage();
            ropt.restore_path = v;
        } else if (a.rfind("--backend", 0) == 0 && value_of(a, "--backend", i, &v)) {
            if (v == "interp") ropt.backend = RunBackend::Interp;
            else if (v == "aot") ropt.backend = RunBackend::Aot;
            else if (v == "mixed") ropt.backend = RunBackend::Mixed;
            else return usage();
        } else if (a.rfind("--aot-cc", 0) == 0 && value_of(a, "--aot-cc", i, &v)) {
            if (v.empty()) return usage();
            ropt.aot_cc = v;
            fopt.diff.aot_cc = v;
        } else if (a.rfind("--lint-only", 0) == 0 && value_of(a, "--lint-only", i, &v)) {
            lopt.only = split_ids(v);
        } else if (a.rfind("--lint-disable", 0) == 0 &&
                   value_of(a, "--lint-disable", i, &v)) {
            lopt.disable = split_ids(v);
        } else if (a.rfind("--gen-fuzz", 0) == 0 && value_of(a, "--gen-fuzz", i, &v)) {
            gen_fuzz_count = std::atol(v.c_str());
            if (gen_fuzz_count <= 0) return usage();
        } else if (a == "--gen-dump") {
            gen_dump = true;
        } else if (a.rfind("--seed", 0) == 0 && value_of(a, "--seed", i, &v)) {
            gen_seed = std::strtoull(v.c_str(), nullptr, 10);
        } else if (a.rfind("--fuzz-out", 0) == 0 && value_of(a, "--fuzz-out", i, &v)) {
            fopt.corpus_dir = v;
        } else if (a.rfind("--fuzz-cc", 0) == 0 && value_of(a, "--fuzz-cc", i, &v)) {
            fopt.diff.cc = v;
        } else if (a == "--fuzz-no-cgen") {
            fopt.diff.run_cgen = false;
        } else if (a == "--fuzz-no-shrink") {
            fopt.shrink_failures = false;
        }
        else if (a == "--help" || a == "-h") return usage();
        else if (!a.empty() && a[0] == '-' && a != "-") return usage();
        else path = a;
    }
    if (gen_dump) {
        testgen::GenCase gc = testgen::generate(gen_seed);
        testgen::CorpusCase cc;
        cc.source = gc.source;
        cc.script_text = gc.script_text;
        cc.kind = "generated";
        cc.seed = gen_seed;
        std::printf("%s", testgen::corpus_format(cc).c_str());
        return 0;
    }
    if (gen_fuzz_count >= 0) {
        fopt.seed = gen_seed;
        fopt.count = static_cast<int>(gen_fuzz_count);
        fopt.diff.max_states = eopt.max_states;
        testgen::FuzzReport rep = testgen::run_fuzz(
            fopt, [](const std::string& line) { std::fprintf(stderr, "%s\n", line.c_str()); });
        return rep.failures == 0 ? 0 : 1;
    }
    if (path.empty()) return usage();

    try {
        std::string source = read_file(path);
        flat::CompiledProgram cp;
        Diagnostics diags;
        if (!flat::compile_checked(source, &cp, diags, path)) {
            print_diags(diags, "compile", path, json);
            return 1;
        }
        if (json) {
            print_diags(diags, "compile", path, true);  // notes / warnings
        } else {
            for (const auto& d : diags.all()) {
                std::fprintf(stderr, "%s\n", d.str().c_str());
            }
        }

        if (analysis) {
            // One verdict feeds every mode below, whichever engine computed
            // it: monolithic product-space exploration or the modular
            // partition-and-compose path (--analysis.modular / --cache-dir).
            bool complete = true;
            std::vector<dfa::Conflict> conflicts;
            size_t states = 0;
            bool used_modular = modular && mode != Mode::DfaDot;
            if (used_modular) {
                analysis::ModularOptions mopt;
                mopt.explore = eopt;
                mopt.cache_dir = cache_dir;
                analysis::ModularOutcome mo = analysis::explore_modular(cp, mopt);
                complete = mo.complete;
                conflicts = std::move(mo.conflicts);
                states = mo.states_total;
                size_t cached = 0;
                for (const analysis::GroupResult& g : mo.groups) {
                    if (g.from_cache) ++cached;
                }
                if (json) {
                    std::ostringstream os;
                    os << "{\"pass\":\"analysis-cache\",\"severity\":\"note\",\"file\":";
                    json_escape(os, path);
                    os << ",\"line\":0,\"col\":0"
                       << ",\"partitioned\":" << (mo.partition.partitioned ? "true" : "false")
                       << ",\"composed\":" << (mo.composed ? "true" : "false")
                       << ",\"modules\":" << mo.partition.modules.size()
                       << ",\"groups\":" << mo.groups.size()
                       << ",\"cached_groups\":" << cached
                       << ",\"explored_groups\":" << (mo.groups.size() - cached)
                       << ",\"states_explored\":" << mo.states_explored
                       << ",\"states_total\":" << mo.states_total
                       << ",\"cache_hits\":" << mo.cache.hits
                       << ",\"cache_misses\":" << mo.cache.misses
                       << ",\"cache_stores\":" << mo.cache.stores
                       << ",\"cache_rejected\":" << mo.cache.rejected
                       << ",\"message\":";
                    std::ostringstream msg;
                    msg << mo.partition.modules.size() << " modules in "
                        << mo.groups.size() << " groups, " << cached << " cached";
                    if (!mo.partition.partitioned) {
                        msg << "; whole-program fallback: " << mo.partition.reason;
                    }
                    json_escape(os, msg.str());
                    os << "}";
                    std::printf("%s\n", os.str().c_str());
                } else {
                    std::fprintf(stderr,
                                 "modular analysis: %zu modules in %zu groups "
                                 "(%zu cached, %zu explored); %zu states "
                                 "re-explored / %zu total; cache hits=%zu "
                                 "misses=%zu stores=%zu rejected=%zu\n",
                                 mo.partition.modules.size(), mo.groups.size(),
                                 cached, mo.groups.size() - cached,
                                 mo.states_explored, mo.states_total,
                                 mo.cache.hits, mo.cache.misses, mo.cache.stores,
                                 mo.cache.rejected);
                    if (!mo.partition.partitioned) {
                        std::fprintf(stderr, "  whole-program fallback: %s\n",
                                     mo.partition.reason.c_str());
                    }
                    for (const analysis::GroupResult& g : mo.groups) {
                        if (!g.fallback_reason.empty()) {
                            std::fprintf(stderr,
                                         "  %zu arms explored jointly: %s\n",
                                         g.modules.size(),
                                         g.fallback_reason.c_str());
                        }
                    }
                }
            } else {
                dfa::Dfa d = analysis::explore(cp, eopt);
                complete = d.complete();
                conflicts = d.conflicts();
                states = d.state_count();
                if (mode == Mode::DfaDot) {
                    bool budget_exhausted =
                        !complete && !(eopt.stop_at_first_conflict && !conflicts.empty());
                    if (budget_exhausted) {
                        if (json) {
                            std::printf("%s\n",
                                        analysis::incomplete_finding(states,
                                                                     eopt.max_states)
                                            .json(path)
                                            .c_str());
                        }
                        std::fprintf(stderr,
                                     "warning: temporal analysis incomplete (state "
                                     "budget exhausted: %zu states explored, "
                                     "--analysis.max-states=%zu); determinism NOT proven\n",
                                     states, eopt.max_states);
                    }
                    if (!d.deterministic()) {
                        if (json) {
                            for (const dfa::Conflict& c : conflicts) {
                                std::printf(
                                    "%s\n",
                                    analysis::conflict_finding(c).json(path).c_str());
                            }
                        }
                        std::fprintf(stderr,
                                     "temporal analysis refused the program:\n%s",
                                     d.report().c_str());
                    }
                    std::printf("%s", d.to_dot(path).c_str());
                    return d.deterministic() ? 0 : 1;
                }
            }

            // An exploration truncated by the state budget proves nothing:
            // never let it masquerade as an "OK". Any incomplete module makes
            // a composed verdict incomplete (Dfa::complete() honesty).
            bool budget_exhausted =
                !complete && !(eopt.stop_at_first_conflict && !conflicts.empty());

            if (mode == Mode::Lint) {
                std::vector<analysis::Finding> findings;
                for (const dfa::Conflict& c : conflicts) {
                    findings.push_back(analysis::conflict_finding(c));
                }
                if (budget_exhausted) {
                    findings.push_back(
                        analysis::incomplete_finding(states, eopt.max_states));
                }
                std::vector<analysis::Finding> lints = analysis::run_lints(cp, lopt);
                findings.insert(findings.end(), std::make_move_iterator(lints.begin()),
                                std::make_move_iterator(lints.end()));
                bool errors = false;
                for (const analysis::Finding& f : findings) {
                    errors = errors || f.severity == Severity::Error;
                    std::printf("%s\n",
                                (json ? f.json(path) : f.str(path)).c_str());
                }
                if (errors) return 1;
                return (strict && budget_exhausted) ? 1 : 0;
            }

            if (budget_exhausted) {
                if (json) {
                    std::printf("%s\n",
                                analysis::incomplete_finding(states, eopt.max_states)
                                    .json(path)
                                    .c_str());
                }
                std::fprintf(stderr,
                             "warning: temporal analysis incomplete (state budget "
                             "exhausted: %zu states explored, "
                             "--analysis.max-states=%zu); determinism NOT proven\n",
                             states, eopt.max_states);
                if (strict) {
                    std::fprintf(stderr, "error: --strict: refusing incompletely "
                                         "analyzed program\n");
                    return 1;
                }
            }
            if (!conflicts.empty()) {
                if (json) {
                    for (const dfa::Conflict& c : conflicts) {
                        std::printf("%s\n",
                                    analysis::conflict_finding(c).json(path).c_str());
                    }
                }
                std::fprintf(stderr, "temporal analysis refused the program:\n");
                for (const dfa::Conflict& c : conflicts) {
                    std::fprintf(stderr, "%s\n", c.str().c_str());
                }
                if (mode == Mode::Explain) {
                    for (const dfa::Conflict& c : conflicts) {
                        std::fprintf(
                            stderr, "  witness: %s\n",
                            analysis::witness_chain(c.witness).c_str());
                    }
                    // Modular witnesses replay whole-program as-is: a module
                    // trigger is a real input, and arms outside the conflict's
                    // group ignore it by construction (no interference edge).
                    const dfa::Conflict& first = conflicts.front();
                    std::printf("# replay script reaching: %s\n", first.str().c_str());
                    std::printf("%s",
                                analysis::witness_script_text(first.witness).c_str());
                    std::printf("Q\n");
                }
                return 1;
            }
            if (mode == Mode::Check || mode == Mode::Explain) {
                std::printf("%s: %s (%zu DFA states, %zu instructions, %d slots, "
                            "%zu gates)\n",
                            path.c_str(),
                            budget_exhausted ? "no conflicts found, INCOMPLETE" : "OK",
                            states, cp.flat.code.size(),
                            cp.flat.data_size, cp.flat.gates.size());
                return 0;
            }
        } else if (mode == Mode::Check) {
            std::printf("%s: parsed and flattened (analysis skipped)\n", path.c_str());
            return 0;
        } else if (mode == Mode::Lint) {
            std::vector<analysis::Finding> findings = analysis::run_lints(cp, lopt);
            for (const analysis::Finding& f : findings) {
                std::printf("%s\n", (json ? f.json(path) : f.str(path)).c_str());
            }
            return 0;
        } else if (mode == Mode::Explain) {
            std::fprintf(stderr, "--explain requires the analysis\n");
            return 2;
        } else if (mode == Mode::DfaDot) {
            std::fprintf(stderr, "--dfa-dot requires the analysis\n");
            return 2;
        }

        switch (mode) {
            case Mode::Run:
                return run_program(std::move(cp), path, ropt, json);
            case Mode::EmitC:
                std::printf("%s", cgen::emit_c(cp).c_str());
                return 0;
            case Mode::Disasm:
                std::printf("%s", flat::disassemble(cp.flat).c_str());
                return 0;
            case Mode::FlowDot:
                std::printf("%s", flow::build_flow_graph(cp).to_dot(path).c_str());
                return 0;
            default:
                return 0;
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "ceuc: %s\n", e.what());
        return 1;
    }
}
