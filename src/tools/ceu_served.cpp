// ceu-served — the reactor as a network service (CEUWIRE1 over TCP).
//
//   ceu-served --program demo.ceu --port 9090
//   ceu-served --demo quickstart --port 0 --workers 4 --io-threads 2
//
// Prints "listening on port <N>" once live (port 0 binds an ephemeral port;
// scripts parse that line). SIGTERM/SIGINT trigger a graceful drain: every
// live interpreted session is checkpointed into --drain-dir, and a new
// server started with --resume-dir pointing there serves Resume frames for
// the drained session ids, byte-identical-thereafter.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "demos/demos.hpp"
#include "serve/server.hpp"
#include "util/diag.hpp"

namespace {

ceu::serve::Server* g_server = nullptr;

void on_signal(int) {
    if (g_server != nullptr) g_server->request_stop();
}

void usage() {
    std::cout <<
        "usage: ceu-served [options]\n"
        "  --program <file.ceu>   register a program (repeatable; first = default;\n"
        "                         registry name is the file path)\n"
        "  --demo <name>          register a built-in demo program\n"
        "                         (quickstart | temperature)\n"
        "  --port <n>             TCP port on 127.0.0.1 (default 0 = ephemeral)\n"
        "  --workers <n>          reactor worker threads (default 1)\n"
        "  --io-threads <n>       inject fast-path io threads (default 0)\n"
        "  --inbox-capacity <n>   per-session inbox bound, 0 = unbounded\n"
        "  --backend <interp|aot> backend for subsequently added programs\n"
        "  --drain-dir <dir>      where SIGTERM drain checkpoints sessions\n"
        "  --resume-dir <dir>     a previous drain to serve resumes from\n";
}

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
    using ceu::serve::Backend;
    ceu::serve::Registry registry;
    ceu::serve::ServerConfig cfg;
    Backend backend = Backend::Interp;

    auto value_of = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::cerr << "ceu-served: " << argv[i] << " needs a value\n";
            std::exit(2);
        }
        return argv[++i];
    };

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else if (arg == "--program") {
                std::string path = value_of(i);
                registry.add(path, slurp(path), backend);
            } else if (arg == "--demo") {
                std::string name = value_of(i);
                const char* src = nullptr;
                if (name == "quickstart") src = ceu::demos::kQuickstart;
                if (name == "temperature") src = ceu::demos::kTemperature;
                if (src == nullptr) {
                    std::cerr << "ceu-served: unknown demo '" << name << "'\n";
                    return 2;
                }
                registry.add(name, src, backend);
            } else if (arg == "--port") {
                cfg.port = static_cast<uint16_t>(std::stoi(value_of(i)));
            } else if (arg == "--workers") {
                cfg.workers = static_cast<size_t>(std::stoul(value_of(i)));
            } else if (arg == "--io-threads") {
                cfg.io_threads = static_cast<size_t>(std::stoul(value_of(i)));
            } else if (arg == "--inbox-capacity") {
                cfg.inbox_capacity = static_cast<uint32_t>(std::stoul(value_of(i)));
            } else if (arg == "--backend") {
                std::string b = value_of(i);
                if (b == "interp") backend = Backend::Interp;
                else if (b == "aot") backend = Backend::Aot;
                else {
                    std::cerr << "ceu-served: unknown backend '" << b << "'\n";
                    return 2;
                }
            } else if (arg == "--drain-dir") {
                cfg.drain_dir = value_of(i);
            } else if (arg == "--resume-dir") {
                cfg.resume_dir = value_of(i);
            } else {
                std::cerr << "ceu-served: unknown option '" << arg << "'\n";
                usage();
                return 2;
            }
        }
        if (registry.size() == 0) {
            std::cerr << "ceu-served: no programs registered "
                         "(--program/--demo)\n";
            return 2;
        }

        ceu::serve::Server server(std::move(registry), cfg);
        g_server = &server;
        std::signal(SIGTERM, on_signal);
        std::signal(SIGINT, on_signal);
        server.start();
        // Line-buffered contract for wrapper scripts.
        std::printf("listening on port %u\n", server.port());
        std::fflush(stdout);
        server.wait();
        const auto& c = server.counters();
        std::printf(
            "served: connections=%llu sessions=%llu resumed=%llu injects=%llu "
            "outputs=%llu drained=%llu\n",
            static_cast<unsigned long long>(c.connections.load()),
            static_cast<unsigned long long>(c.sessions_opened.load()),
            static_cast<unsigned long long>(c.sessions_resumed.load()),
            static_cast<unsigned long long>(c.injects.load()),
            static_cast<unsigned long long>(c.outputs.load()),
            static_cast<unsigned long long>(c.drained.load()));
        g_server = nullptr;
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "ceu-served: " << e.what() << "\n";
        return 1;
    }
}
