// ceu-client — load/replay tool for a ceu-served instance.
//
//   ceu-client --port 9090 --sessions 8 --script burst.txt --out traces/
//
// Opens N sessions over one connection and replays a recorded script
// against every one of them, in a single deterministic order (script line
// outer, session inner). Script lines:
//
//   inject <event> [value]     one occurrence per session
//   advance <us>               fleet clock advance (once per line)
//   ping                       barrier: wait until all outputs flushed
//
// After the replay a final ping flushes everything; the tool prints one
// digest line per session (output count + FNV-1a hash of the trace) and,
// with --out, writes each session's trace to <dir>/<session>.trace. Two
// runs of the same script against servers with different --workers must
// print identical digests — that is the serving determinism contract, and
// `ctest -L serve` gates it.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hpp"

namespace {

uint64_t fnv1a(const std::string& s) {
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

void usage() {
    std::cout <<
        "usage: ceu-client --port <n> [options]\n"
        "  --program <name>    registry program to open (default: server default)\n"
        "  --sessions <k>      sessions to open (default 1)\n"
        "  --script <file>     replay script (inject/advance/ping lines);\n"
        "                      default: a single ping\n"
        "  --out <dir>         write per-session traces to <dir>/<id>.trace\n"
        "  --spans             request reaction-span streaming\n";
}

}  // namespace

int main(int argc, char** argv) {
    uint16_t port = 0;
    std::string program;
    std::string script_path;
    std::string out_dir;
    size_t n_sessions = 1;
    bool spans = false;

    auto value_of = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::cerr << "ceu-client: " << argv[i] << " needs a value\n";
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--port") {
            port = static_cast<uint16_t>(std::stoi(value_of(i)));
        } else if (arg == "--program") {
            program = value_of(i);
        } else if (arg == "--sessions") {
            n_sessions = static_cast<size_t>(std::stoul(value_of(i)));
        } else if (arg == "--script") {
            script_path = value_of(i);
        } else if (arg == "--out") {
            out_dir = value_of(i);
        } else if (arg == "--spans") {
            spans = true;
        } else {
            std::cerr << "ceu-client: unknown option '" << arg << "'\n";
            usage();
            return 2;
        }
    }
    if (port == 0) {
        std::cerr << "ceu-client: --port is required\n";
        return 2;
    }

    try {
        ceu::serve::Client client;
        client.connect(port, program, spans);

        std::vector<uint64_t> sessions;
        for (size_t i = 0; i < n_sessions; ++i) sessions.push_back(client.open());

        std::vector<std::string> lines;
        if (!script_path.empty()) {
            std::ifstream in(script_path);
            if (!in) {
                std::cerr << "ceu-client: cannot read " << script_path << "\n";
                return 1;
            }
            std::string line;
            while (std::getline(in, line)) lines.push_back(line);
        }
        for (const std::string& line : lines) {
            std::istringstream ls(line);
            std::string cmd;
            ls >> cmd;
            if (cmd.empty() || cmd[0] == '#') continue;
            if (cmd == "inject") {
                std::string event;
                int64_t value = 0;
                ls >> event >> value;
                for (uint64_t s : sessions) client.inject(s, event, value);
            } else if (cmd == "advance") {
                int64_t us = 0;
                ls >> us;
                client.advance(us);
            } else if (cmd == "ping") {
                client.ping();
            } else {
                std::cerr << "ceu-client: bad script line: " << line << "\n";
                return 2;
            }
        }
        client.ping();

        if (!out_dir.empty()) {
            std::filesystem::create_directories(out_dir);
        }
        for (uint64_t s : sessions) {
            std::string trace = client.trace_text(s);
            std::cout << "session " << s << ": outputs="
                      << client.outputs(s).size() << " hash=" << std::hex
                      << fnv1a(trace) << std::dec;
            if (spans) std::cout << " spans=" << client.spans(s).size();
            std::cout << "\n";
            if (!out_dir.empty()) {
                std::ofstream out(out_dir + "/" + std::to_string(s) + ".trace");
                out << trace;
            }
        }
        client.bye();
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "ceu-client: " << e.what() << "\n";
        return 1;
    }
}
