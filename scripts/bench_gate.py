#!/usr/bin/env python3
"""Hardware-conditional threshold gate over the bench JSON artifacts.

Reads BENCH_reactor.json (ceu-bench-reactor-v5) and optionally
BENCH_dfa.json (ceu-bench-dfa-v3) and fails when a scaling claim the
box can actually test regresses. Thresholds scale with the hardware the
artifact records (hw_threads is stamped by the bench binaries, so the
gate judges the run by the box it ran on, not the box running the gate):

  reactor scaling   8 workers vs 1 on the interpreted 10k mix must reach
                    2.0x with >= 8 hardware threads (real parallel wins),
                    and must at least hold 0.8x at 4-7 threads — an
                    oversubscribed pool may not speed anything up, but it
                    must not collapse either. Below 4 threads the sweep
                    is pure context-switch noise (observed spread 0.6-0.9x
                    on a 1-thread box) and is reported, not gated.
  compiled floor    the AOT backend must beat the interpreter (>= 1.2x)
                    on the 10k mix at 1 worker; self-skips when the
                    artifact has no compiled cells (no host C compiler on
                    the runner). The old inline --check demanded 5x, but
                    most of that gap was the interpreter's per-reaction
                    timestamp overhead — with reaction timing off by
                    default and arena-backed envelopes/timers the
                    interpreter runs ~17x faster, so the honest claim is
                    "compiled still wins", not a fixed multiple.
  steady-state      the warmed interpreted 10k-mix 1-worker cell must not
                    touch the global allocator at all (exact counter from
                    the bench's operator-new wrapper, not an RSS guess).
  explorer scaling  (only with --dfa) the parallel explorer at 8 jobs must
                    reach 1.5x over serial with >= 8 hardware threads;
                    below that the sweep is reported but not gated — an
                    oversubscribed explorer measures the scheduler, not
                    the frontier. Signature identity is always gated.

Usage: bench_gate.py [--reactor PATH] [--dfa PATH]
Exit: 0 = every applicable gate passed (skips are not failures); 1 = a
gate failed; 2 = usage or artifact problem (missing file, wrong schema).
"""

import argparse
import json
import sys


PASS, FAIL, SKIP = "ok  ", "FAIL", "skip"


def load(path: str, want_schema_prefix: str):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_gate: cannot read {path}: {e}")
    schema = doc.get("schema", "")
    if not schema.startswith(want_schema_prefix):
        raise SystemExit(f"bench_gate: {path}: schema {schema!r}, "
                         f"want {want_schema_prefix}*")
    return doc


def gate_reactor(doc) -> list:
    """Returns a list of (verdict, message) for the reactor artifact."""
    out = []
    hw = int(doc.get("hw_threads", 0))

    speedup = float(doc.get("speedup_8v1_10k", 0.0))
    if hw < 4:
        out.append((SKIP, f"reactor 8w/1w on 10k mix: {speedup:.2f}x "
                          f"({hw} hw threads < 4: sweep is context-switch "
                          f"noise, not gated)"))
    else:
        floor = 2.0 if hw >= 8 else 0.8
        why = ("8+ hw threads: parallelism must win" if hw >= 8
               else f"{hw} hw threads: oversubscribed, must not collapse")
        verdict = PASS if speedup >= floor else FAIL
        out.append((verdict, f"reactor 8w/1w on 10k mix: {speedup:.2f}x "
                             f">= {floor:.1f}x ({why})"))

    compiled = float(doc.get("compiled_vs_interp_10k", 0.0))
    if not doc.get("compiled_cells"):
        out.append((SKIP, "compiled floor: no compiled cells in artifact "
                          "(runner has no host C compiler)"))
    else:
        verdict = PASS if compiled >= 1.2 else FAIL
        out.append((verdict, f"compiled/interpreted on 10k mix at 1w: "
                             f"{compiled:.2f}x >= 1.2x"))

    steady = int(doc.get("steady_alloc_bytes_1w_10k", -1))
    verdict = PASS if steady == 0 else FAIL
    out.append((verdict, f"steady-state global-allocator bytes "
                         f"(1w, 10k mix): {steady} == 0"))
    return out


def gate_dfa(doc) -> list:
    out = []
    hw = int(doc.get("hw_threads", 0))
    cells = doc.get("parallel", [])
    by_jobs = {int(c.get("jobs", 0)): c for c in cells}

    for jobs, c in sorted(by_jobs.items()):
        if not c.get("identical", False):
            out.append((FAIL, f"explorer at {jobs} jobs: DFA signature "
                              f"differs from serial"))
    if all(c.get("identical", False) for c in cells):
        out.append((PASS, f"explorer: all {len(cells)} jobs settings "
                          f"order-normalized identical"))

    eight = by_jobs.get(8)
    if eight is None:
        out.append((SKIP, "explorer scaling: no 8-jobs cell in artifact"))
    elif hw < 8:
        out.append((SKIP, f"explorer scaling: {hw} hw threads < 8 "
                          f"(oversubscribed sweep is not a scaling claim)"))
    else:
        sp = float(eight.get("speedup", 0.0))
        verdict = PASS if sp >= 1.5 else FAIL
        out.append((verdict, f"explorer 8 jobs vs serial: {sp:.2f}x >= 1.5x"))
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__, add_help=True)
    ap.add_argument("--reactor", metavar="PATH",
                    help="BENCH_reactor.json to gate")
    ap.add_argument("--dfa", metavar="PATH", help="BENCH_dfa.json to gate")
    args = ap.parse_args()
    if not args.reactor and not args.dfa:
        ap.error("nothing to gate: pass --reactor and/or --dfa")

    results = []
    if args.reactor:
        results += gate_reactor(load(args.reactor, "ceu-bench-reactor-v5"))
    if args.dfa:
        results += gate_dfa(load(args.dfa, "ceu-bench-dfa-v"))

    failures = 0
    for verdict, msg in results:
        print(f"{verdict}  {msg}")
        if verdict == FAIL:
            failures += 1
    print(f"bench_gate: {len(results)} checks, {failures} failed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
