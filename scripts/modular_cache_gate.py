#!/usr/bin/env python3
"""Warm-cache incrementality gate for the modular temporal analysis.

Lints a set of Céu programs twice against one shared --analysis.cache-dir
and fails if the warm run re-explores anything: every group of every
unchanged program must come back as a cache hit (cache_misses == 0 and
states_explored == 0 in the "analysis-cache" JSON record).

Programs come from two sources so the gate covers both shapes:
  * seeded testgen programs (ceuc --gen.dump), stripped of the corpus
    header/script sections;
  * the checked-in tests/corpus/*.ceu witnesses, same format.

Usage: modular_cache_gate.py <path-to-ceuc> [workdir]
Exit: 0 = warm run fully cached; 1 = a warm miss (or a verdict flip).
"""

import glob
import json
import os
import subprocess
import sys


def corpus_source(text: str) -> str:
    """Strips the `# ceu-corpus ...` header and the `=== script ===` tail."""
    if text.startswith("#"):
        text = text.split("\n", 1)[1]
    return text.split("=== script ===")[0]


def lint(ceuc: str, path: str, cache_dir: str):
    """Runs `ceuc --lint` and returns (exit_code, analysis-cache record)."""
    proc = subprocess.run(
        [ceuc, "--lint", "--diag-format=json",
         "--analysis.cache-dir=" + cache_dir, path],
        capture_output=True, text=True, check=False)
    record = None
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        obj = json.loads(line)
        if obj.get("pass") == "analysis-cache":
            record = obj
    if record is None:
        raise SystemExit(f"{path}: no analysis-cache record in output:\n"
                         f"{proc.stdout}\n{proc.stderr}")
    return proc.returncode, record


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    ceuc = sys.argv[1]
    workdir = sys.argv[2] if len(sys.argv) > 2 else "cache-gate"
    os.makedirs(workdir, exist_ok=True)
    cache_dir = os.path.join(workdir, ".ceulint-cache")

    programs = []
    for seed in range(1, 21):
        dump = subprocess.run([ceuc, "--gen.dump", "--gen.seed", str(seed)],
                              capture_output=True, text=True, check=True)
        path = os.path.join(workdir, f"seed{seed}.ceu")
        with open(path, "w") as f:
            f.write(corpus_source(dump.stdout))
        programs.append(path)
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for corpus in sorted(glob.glob(os.path.join(repo, "tests", "corpus", "*.ceu"))):
        path = os.path.join(workdir, "corpus_" + os.path.basename(corpus))
        with open(corpus) as f, open(path, "w") as out:
            out.write(corpus_source(f.read()))
        programs.append(path)

    cold = {p: lint(ceuc, p, cache_dir) for p in programs}
    failures = 0
    for p in programs:
        cold_rc, cold_rec = cold[p]
        warm_rc, warm_rec = lint(ceuc, p, cache_dir)
        if warm_rc != cold_rc:
            print(f"FAIL {p}: verdict flipped cold={cold_rc} warm={warm_rc}")
            failures += 1
            continue
        if warm_rec["cache_misses"] != 0 or warm_rec["states_explored"] != 0:
            print(f"FAIL {p}: warm run re-explored an unchanged module: "
                  f"misses={warm_rec['cache_misses']} "
                  f"states={warm_rec['states_explored']}")
            failures += 1
            continue
        print(f"ok   {p}: groups={warm_rec['groups']} "
              f"hits={warm_rec['cache_hits']} (fully cached)")
    print(f"{len(programs)} programs, {failures} warm-run failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
