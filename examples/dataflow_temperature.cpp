// The paper's §2.2 dataflow example: Celsius and Fahrenheit kept mutually
// consistent through internal events — a dependency *cycle* that never
// cycles at runtime, thanks to the stack policy for internal events.
//
//   $ ./examples/dataflow_temperature
#include <cstdio>

#include "demos/demos.hpp"
#include "dfa/dfa.hpp"
#include "host/instance.hpp"

int main() {
    using namespace ceu;

    flat::CompiledProgram cp = flat::compile(demos::kTemperature, "temperature.ceu");

    // The temporal analysis proves the mutual dependency is deterministic:
    // the emitter is stacked while its dependents react, so the updates are
    // causally ordered (no delay combinators needed — §2.2).
    dfa::Dfa d = dfa::Dfa::build(cp);
    std::printf("temporal analysis: %s (%zu states)\n\n",
                d.deterministic() ? "deterministic" : "NONDETERMINISTIC",
                d.state_count());

    host::Instance inst(cp);
    inst.run(env::Script()
                 .event("SetCelsius", 0)
                 .event("SetCelsius", 100)
                 .event("SetFahrenheit", 212)
                 .event("SetFahrenheit", -40)
                 .event("SetCelsius", 37));
    for (const auto& line : inst.trace()) std::printf("%s\n", line.c_str());
    std::printf("\n(each set of one unit recomputed the other within the same "
                "reaction chain)\n");
    return 0;
}
