// Multi-hop data collection on the WSN simulator: a line of motes routes
// periodic sensor readings hop by hop to the sink (mote 0) — the protocol
// the paper's conclusion reports being taught with Céu.
//
//   $ ./examples/multihop_collection
#include <cstdio>
#include <vector>

#include "demos/demos.hpp"
#include "wsn/tinyos_binding.hpp"

int main() {
    using namespace ceu;

    struct Reading {
        int64_t origin, value, hops;
        Micros at;
    };
    std::vector<Reading> collected;

    // Line topology: 3 -> 2 -> 1 -> 0 (sink).
    constexpr int kMotes = 4;
    wsn::RadioModel radio;
    for (int id = 1; id < kMotes; ++id) radio.link(id, id - 1, 2 * kMs);
    wsn::Network net(radio);
    for (int id = 0; id < kMotes; ++id) {
        wsn::CeuMoteConfig cfg;
        cfg.source = demos::kMultihop;
        cfg.customize = [&collected, &net](rt::CBindings& c, int mote_id) {
            c.fn("Read_sensor", [mote_id](rt::Engine& eng, std::span<const rt::Value>) {
                // A deterministic per-mote "temperature" ramp.
                return rt::Value::integer(200 + mote_id * 10 +
                                          (eng.logical_now() / kSec) % 7);
            });
            c.fn("collect", [&collected, &net](rt::Engine&,
                                               std::span<const rt::Value> args) {
                collected.push_back({args[0].as_int(), args[1].as_int(),
                                     args[2].as_int(), net.now()});
                return rt::Value::integer(0);
            });
        };
        net.add(std::make_unique<wsn::CeuMote>(id, cfg));
    }
    net.start();
    net.run_until(20 * kSec);

    std::printf("multi-hop collection: %zu readings reached the sink in 20s\n\n",
                collected.size());
    std::printf("%8s %8s %8s %8s\n", "t", "origin", "value", "hops");
    for (const Reading& r : collected) {
        std::printf("%7.1fs %8lld %8lld %8lld\n", static_cast<double>(r.at) / kSec,
                    static_cast<long long>(r.origin), static_cast<long long>(r.value),
                    static_cast<long long>(r.hops));
    }
    std::printf("\n(origin k arrives with k-1 hops: the reading was forwarded "
                "through every intermediate mote)\n");
    return 0;
}
