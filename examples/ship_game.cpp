// The paper's §3.2 demo: the LCD "ship" game on the simulated Arduino —
// scripted keypad presses start the game and steer the ship; the console
// shows the 2x16 LCD frames.
//
//   $ ./examples/ship_game
#include <cstdio>

#include "demos/demos.hpp"
#include "host/instance.hpp"

int main() {
    using namespace ceu;

    arduino::Board board;
    arduino::Lcd lcd;
    demos::ShipWorld world(lcd);
    rt::CBindings bindings = demos::make_ship_bindings(world, lcd, board);

    // The player: press UP at 120ms (start), DOWN at ~2s, UP at ~4s.
    board.set_analog_source(
        0, arduino::Board::combine(
               {arduino::Board::keypad_press(arduino::kRawUp, 120 * kMs, 400 * kMs),
                arduino::Board::keypad_press(arduino::kRawDown, 2000 * kMs, 2300 * kMs),
                arduino::Board::keypad_press(arduino::kRawUp, 4000 * kMs, 4300 * kMs)}));

    flat::CompiledProgram cp = flat::compile(demos::kShip, "ship.ceu");
    host::Config cfg;
    cfg.bindings = &bindings;
    host::Instance inst(cp, cfg);
    inst.boot();

    // Drive 12 seconds in 50ms ticks (the keypad sampling period),
    // letting the async key-emitter settle after each tick.
    for (int tick = 0; tick < 240; ++tick) {
        inst.advance(50 * kMs);
        inst.settle();
    }

    std::printf("ship game: %llu redraws, %zu LCD frames\n\n",
                static_cast<unsigned long long>(world.redraws()), lcd.frames().size());
    // Print every 4th frame as a tiny animation.
    for (size_t i = 0; i < lcd.frames().size(); i += 4) {
        const auto& f = lcd.frames()[i];
        std::printf("+----------------+\n");
        size_t nl = f.screen.find('\n');
        std::printf("|%s|\n|%s|\n", f.screen.substr(0, nl).c_str(),
                    f.screen.substr(nl + 1).c_str());
        std::printf("+----------------+\n");
    }
    std::printf("\n('>' is the ship, '#' are meteors; the game restarts after "
                "each crash, faster after each win)\n");
    return 0;
}
