// Quickstart: compile and run the paper's §2 three-trail counter, then show
// what the toolchain knows about it (temporal analysis, flow graph, memory
// layout, generated C).
//
//   $ ./examples/quickstart
#include <cstdio>

#include "cgen/cgen.hpp"
#include "demos/demos.hpp"
#include "dfa/dfa.hpp"
#include "flow/flowgraph.hpp"
#include "host/instance.hpp"

int main() {
    using namespace ceu;

    // 1. Compile: lex -> parse -> sema (bounded-execution) -> flatten.
    flat::CompiledProgram cp = flat::compile(demos::kQuickstart, "quickstart.ceu");
    std::printf("compiled: %zu instructions, %zu gates, %d memory slots\n",
                cp.flat.code.size(), cp.flat.gates.size(), cp.flat.data_size);

    // 2. Temporal analysis: the compile-time determinism guarantee (§2.6).
    dfa::Dfa d = dfa::Dfa::build(cp);
    std::printf("temporal analysis: %zu DFA states, %s\n", d.state_count(),
                d.deterministic() ? "deterministic" : "NONDETERMINISTIC");

    // 3. React to an input script: one second ticks and a Restart=10. The
    //    Instance is the embedding facade — it owns the engine, the standard
    //    C bindings and the trace; observe_stats() arms the (otherwise free)
    //    observability layer for reaction-level counters.
    host::Instance inst(cp);
    inst.observe_stats();
    inst.run(env::Script()
                 .advance(kSec)
                 .advance(kSec)
                 .event("Restart", 10)
                 .advance(kSec)
                 .advance(kSec));
    std::printf("\nprogram output:\n");
    for (const auto& line : inst.trace()) std::printf("  %s\n", line.c_str());

    obs::ProcessStats stats = inst.snapshot();
    std::printf("\nobserved: %llu reactions (%llu timer, %llu event), "
                "%llu trail wakes, %llu internal emits\n",
                static_cast<unsigned long long>(stats.reactions),
                static_cast<unsigned long long>(stats.reactions_by_kind[2]),
                static_cast<unsigned long long>(stats.reactions_by_kind[1]),
                static_cast<unsigned long long>(stats.wakes),
                static_cast<unsigned long long>(stats.emits));

    // 4. The same program as single-threaded C (§4.4) — first lines only.
    std::string c = cgen::emit_c(cp);
    std::printf("\ngenerated C: %zu bytes; flow graph: %zu nodes\n", c.size(),
                flow::build_flow_graph(cp).nodes.size());
    return 0;
}
