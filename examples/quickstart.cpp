// Quickstart: compile and run the paper's §2 three-trail counter, then show
// what the toolchain knows about it (temporal analysis, flow graph, memory
// layout, generated C).
//
//   $ ./examples/quickstart
#include <cstdio>

#include "cgen/cgen.hpp"
#include "demos/demos.hpp"
#include "dfa/dfa.hpp"
#include "env/driver.hpp"
#include "flow/flowgraph.hpp"

int main() {
    using namespace ceu;

    // 1. Compile: lex -> parse -> sema (bounded-execution) -> flatten.
    flat::CompiledProgram cp = flat::compile(demos::kQuickstart, "quickstart.ceu");
    std::printf("compiled: %zu instructions, %zu gates, %d memory slots\n",
                cp.flat.code.size(), cp.flat.gates.size(), cp.flat.data_size);

    // 2. Temporal analysis: the compile-time determinism guarantee (§2.6).
    dfa::Dfa d = dfa::Dfa::build(cp);
    std::printf("temporal analysis: %zu DFA states, %s\n", d.state_count(),
                d.deterministic() ? "deterministic" : "NONDETERMINISTIC");

    // 3. React to an input script: one second ticks and a Restart=10.
    env::Driver driver(cp);
    driver.run(env::Script()
                   .advance(kSec)
                   .advance(kSec)
                   .event("Restart", 10)
                   .advance(kSec)
                   .advance(kSec));
    std::printf("\nprogram output:\n");
    for (const auto& line : driver.trace()) std::printf("  %s\n", line.c_str());

    // 4. The same program as single-threaded C (§4.4) — first lines only.
    std::string c = cgen::emit_c(cp);
    std::printf("\ngenerated C: %zu bytes; flow graph: %zu nodes\n", c.size(),
                flow::build_flow_graph(cp).nodes.size());
    return 0;
}
