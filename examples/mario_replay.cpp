// The paper's §3.3 demo: the Mario game embedded, unmodified, in three
// environments — live play, record + exact replay, and backwards replay.
// All input comes from async blocks (simulation in the language itself).
//
//   $ ./examples/mario_replay
#include <cstdio>

#include "demos/demos.hpp"
#include "host/instance.hpp"

namespace {

using namespace ceu;

display::Display run_variant(const char* name, const char* source, int keys) {
    display::Display disp;
    for (int i = 0; i < keys; ++i) disp.push_key();
    rt::CBindings bindings = demos::make_mario_bindings(disp);
    flat::CompiledProgram cp = flat::compile(source, name);
    host::Config cfg;
    cfg.bindings = &bindings;
    host::Instance inst(cp, cfg);
    inst.run(env::Script().settle_asyncs());
    std::printf("%-9s: %zu frames recorded, %llu redraw calls\n", name,
                disp.frames().size(),
                static_cast<unsigned long long>(disp.redraw_calls()));
    return disp;
}

}  // namespace

int main() {
    std::printf("== live session (10s of steps, 2 key presses) ==\n");
    display::Display live = run_variant("live", demos::kMarioLive, 2);
    const auto& lf = live.frames();
    std::printf("  mario: x %lld -> %lld over the session\n",
                static_cast<long long>(lf.front().mario_x),
                static_cast<long long>(lf.back().mario_x));

    std::printf("\n== record + 2 replays (same seed, same key steps) ==\n");
    display::Display rep = run_variant("replay", demos::kMarioReplay, 3);
    const auto& frames = rep.frames();
    bool identical = true;
    for (size_t i = 0; i < 1001; ++i) {
        if (!(frames[i] == frames[i + 1001]) || !(frames[i] == frames[i + 2002])) {
            identical = false;
        }
    }
    std::printf("  replays reproduce the recording exactly: %s\n",
                identical ? "YES (reactive determinism, paper 2.8)" : "NO (bug!)");

    std::printf("\n== backwards replay (scene at step 200, 190, ..., 10) ==\n");
    display::Display back = run_variant("backwards", demos::kMarioBackwards, 0);
    const auto& bf = back.frames();
    std::printf("  marked frames (mario_x by step_ref):");
    for (size_t i = 201; i < bf.size(); ++i) {
        std::printf(" %lld", static_cast<long long>(bf[i].mario_x));
    }
    std::printf("\n  (the gameplay unwinds backwards by re-executing the "
                "recorded inputs with redraws off)\n");
    return 0;
}
