// The paper's §3.1 demo: three motes in a ring forward an ever-growing
// counter; killing a mote triggers the network-down behavior (red-led blink
// + mote-0 retries) and reviving it heals the ring.
//
//   $ ./examples/ring_network
#include <cstdio>

#include "demos/demos.hpp"
#include "wsn/tinyos_binding.hpp"

int main() {
    using namespace ceu;

    wsn::RadioModel radio;
    radio.link(0, 1, 2 * kMs);
    radio.link(1, 2, 2 * kMs);
    radio.link(2, 0, 2 * kMs);
    wsn::Network net(radio);
    for (int id = 0; id < 3; ++id) {
        wsn::CeuMoteConfig cfg;
        cfg.source = demos::kRing;
        net.add(std::make_unique<wsn::CeuMote>(id, cfg));
    }
    net.start();

    auto report = [&](const char* phase) {
        std::printf("\n-- %s (t=%llds) --\n", phase,
                    static_cast<long long>(net.now() / kSec));
        for (size_t id = 0; id < net.mote_count(); ++id) {
            auto& m = static_cast<wsn::CeuMote&>(net.mote(static_cast<int>(id)));
            std::printf("mote %zu: leds=%lld, %zu led changes, rx=%llu\n", id,
                        static_cast<long long>(m.leds()), m.led_history().size(),
                        static_cast<unsigned long long>(m.rx_count));
        }
    };

    std::printf("ring of 3 motes, counter advances one hop per second\n");
    net.run_until(10 * kSec);
    report("healthy ring");

    std::printf("\n!! mote 2 dies — ring broken\n");
    net.radio().set_down(2, true);
    net.run_until(25 * kSec);
    report("network down (blinking + retries)");

    std::printf("\n!! mote 2 revived — mote 0's next retry heals the ring\n");
    net.radio().set_down(2, false);
    net.run_until(45 * kSec);
    report("healed ring");

    // Show mote 1's led history tail: counter values, then 2Hz blinking,
    // then counters again.
    auto& m1 = static_cast<wsn::CeuMote&>(net.mote(1));
    std::printf("\nmote 1 led history (last 12):\n");
    size_t n = m1.led_history().size();
    for (size_t i = n > 12 ? n - 12 : 0; i < n; ++i) {
        const auto& [at, v] = m1.led_history()[i];
        std::printf("  t=%6.1fs leds=%lld\n", static_cast<double>(at) / kSec,
                    static_cast<long long>(v));
    }
    return 0;
}
