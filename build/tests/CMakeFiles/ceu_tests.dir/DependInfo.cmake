
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arduino_display.cpp" "tests/CMakeFiles/ceu_tests.dir/test_arduino_display.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_arduino_display.cpp.o.d"
  "/root/repo/tests/test_ast.cpp" "tests/CMakeFiles/ceu_tests.dir/test_ast.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_ast.cpp.o.d"
  "/root/repo/tests/test_cgen.cpp" "tests/CMakeFiles/ceu_tests.dir/test_cgen.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_cgen.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/ceu_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_demos.cpp" "tests/CMakeFiles/ceu_tests.dir/test_demos.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_demos.cpp.o.d"
  "/root/repo/tests/test_dfa.cpp" "tests/CMakeFiles/ceu_tests.dir/test_dfa.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_dfa.cpp.o.d"
  "/root/repo/tests/test_env.cpp" "tests/CMakeFiles/ceu_tests.dir/test_env.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_env.cpp.o.d"
  "/root/repo/tests/test_flatten.cpp" "tests/CMakeFiles/ceu_tests.dir/test_flatten.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_flatten.cpp.o.d"
  "/root/repo/tests/test_flowgraph.cpp" "tests/CMakeFiles/ceu_tests.dir/test_flowgraph.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_flowgraph.cpp.o.d"
  "/root/repo/tests/test_lexer.cpp" "tests/CMakeFiles/ceu_tests.dir/test_lexer.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_lexer.cpp.o.d"
  "/root/repo/tests/test_outputs.cpp" "tests/CMakeFiles/ceu_tests.dir/test_outputs.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_outputs.cpp.o.d"
  "/root/repo/tests/test_parser.cpp" "tests/CMakeFiles/ceu_tests.dir/test_parser.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_parser.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/ceu_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_runtime_core.cpp" "tests/CMakeFiles/ceu_tests.dir/test_runtime_core.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_runtime_core.cpp.o.d"
  "/root/repo/tests/test_runtime_more.cpp" "tests/CMakeFiles/ceu_tests.dir/test_runtime_more.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_runtime_more.cpp.o.d"
  "/root/repo/tests/test_sema.cpp" "tests/CMakeFiles/ceu_tests.dir/test_sema.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_sema.cpp.o.d"
  "/root/repo/tests/test_simulation_suite.cpp" "tests/CMakeFiles/ceu_tests.dir/test_simulation_suite.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_simulation_suite.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/ceu_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_wsn.cpp" "tests/CMakeFiles/ceu_tests.dir/test_wsn.cpp.o" "gcc" "tests/CMakeFiles/ceu_tests.dir/test_wsn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ceu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ceu_demos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ceu_wsn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ceu_arduino.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ceu_display.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
