# Empty compiler generated dependencies file for ceu_tests.
# This may be replaced when dependencies are built.
