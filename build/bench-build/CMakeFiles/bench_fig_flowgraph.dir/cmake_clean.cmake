file(REMOVE_RECURSE
  "../bench/bench_fig_flowgraph"
  "../bench/bench_fig_flowgraph.pdb"
  "CMakeFiles/bench_fig_flowgraph.dir/bench_fig_flowgraph.cpp.o"
  "CMakeFiles/bench_fig_flowgraph.dir/bench_fig_flowgraph.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_flowgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
