# Empty dependencies file for bench_fig_flowgraph.
# This may be replaced when dependencies are built.
