file(REMOVE_RECURSE
  "../bench/bench_fig1_reactions"
  "../bench/bench_fig1_reactions.pdb"
  "CMakeFiles/bench_fig1_reactions.dir/bench_fig1_reactions.cpp.o"
  "CMakeFiles/bench_fig1_reactions.dir/bench_fig1_reactions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_reactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
