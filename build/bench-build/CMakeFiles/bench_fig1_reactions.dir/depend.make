# Empty dependencies file for bench_fig1_reactions.
# This may be replaced when dependencies are built.
