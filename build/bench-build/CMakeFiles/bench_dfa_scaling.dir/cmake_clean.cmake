file(REMOVE_RECURSE
  "../bench/bench_dfa_scaling"
  "../bench/bench_dfa_scaling.pdb"
  "CMakeFiles/bench_dfa_scaling.dir/bench_dfa_scaling.cpp.o"
  "CMakeFiles/bench_dfa_scaling.dir/bench_dfa_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dfa_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
