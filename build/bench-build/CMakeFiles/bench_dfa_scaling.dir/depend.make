# Empty dependencies file for bench_dfa_scaling.
# This may be replaced when dependencies are built.
