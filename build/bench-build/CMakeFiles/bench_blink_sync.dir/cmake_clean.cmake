file(REMOVE_RECURSE
  "../bench/bench_blink_sync"
  "../bench/bench_blink_sync.pdb"
  "CMakeFiles/bench_blink_sync.dir/bench_blink_sync.cpp.o"
  "CMakeFiles/bench_blink_sync.dir/bench_blink_sync.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blink_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
