# Empty dependencies file for bench_blink_sync.
# This may be replaced when dependencies are built.
