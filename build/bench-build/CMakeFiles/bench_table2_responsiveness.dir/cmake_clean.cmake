file(REMOVE_RECURSE
  "../bench/bench_table2_responsiveness"
  "../bench/bench_table2_responsiveness.pdb"
  "CMakeFiles/bench_table2_responsiveness.dir/bench_table2_responsiveness.cpp.o"
  "CMakeFiles/bench_table2_responsiveness.dir/bench_table2_responsiveness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_responsiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
