# Empty dependencies file for bench_fig2_dfa.
# This may be replaced when dependencies are built.
