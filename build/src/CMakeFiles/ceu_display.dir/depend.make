# Empty dependencies file for ceu_display.
# This may be replaced when dependencies are built.
