file(REMOVE_RECURSE
  "CMakeFiles/ceu_display.dir/display/binding.cpp.o"
  "CMakeFiles/ceu_display.dir/display/binding.cpp.o.d"
  "CMakeFiles/ceu_display.dir/display/display.cpp.o"
  "CMakeFiles/ceu_display.dir/display/display.cpp.o.d"
  "libceu_display.a"
  "libceu_display.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceu_display.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
