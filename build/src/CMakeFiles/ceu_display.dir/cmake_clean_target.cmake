file(REMOVE_RECURSE
  "libceu_display.a"
)
