file(REMOVE_RECURSE
  "CMakeFiles/ceu_demos.dir/demos/demos.cpp.o"
  "CMakeFiles/ceu_demos.dir/demos/demos.cpp.o.d"
  "libceu_demos.a"
  "libceu_demos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceu_demos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
