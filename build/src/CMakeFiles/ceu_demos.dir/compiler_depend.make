# Empty compiler generated dependencies file for ceu_demos.
# This may be replaced when dependencies are built.
