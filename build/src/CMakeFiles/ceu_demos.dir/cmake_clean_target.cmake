file(REMOVE_RECURSE
  "libceu_demos.a"
)
