
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/demos/demos.cpp" "src/CMakeFiles/ceu_demos.dir/demos/demos.cpp.o" "gcc" "src/CMakeFiles/ceu_demos.dir/demos/demos.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ceu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ceu_arduino.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ceu_display.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ceu_wsn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
