file(REMOVE_RECURSE
  "CMakeFiles/ceuc.dir/tools/ceuc.cpp.o"
  "CMakeFiles/ceuc.dir/tools/ceuc.cpp.o.d"
  "ceuc"
  "ceuc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceuc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
