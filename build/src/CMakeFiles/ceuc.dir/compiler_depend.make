# Empty compiler generated dependencies file for ceuc.
# This may be replaced when dependencies are built.
