
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/ast.cpp" "src/CMakeFiles/ceu.dir/ast/ast.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/ast/ast.cpp.o.d"
  "/root/repo/src/ast/print.cpp" "src/CMakeFiles/ceu.dir/ast/print.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/ast/print.cpp.o.d"
  "/root/repo/src/cgen/cgen.cpp" "src/CMakeFiles/ceu.dir/cgen/cgen.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/cgen/cgen.cpp.o.d"
  "/root/repo/src/codegen/flatten.cpp" "src/CMakeFiles/ceu.dir/codegen/flatten.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/codegen/flatten.cpp.o.d"
  "/root/repo/src/codegen/layout.cpp" "src/CMakeFiles/ceu.dir/codegen/layout.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/codegen/layout.cpp.o.d"
  "/root/repo/src/dfa/abstract.cpp" "src/CMakeFiles/ceu.dir/dfa/abstract.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/dfa/abstract.cpp.o.d"
  "/root/repo/src/dfa/dfa.cpp" "src/CMakeFiles/ceu.dir/dfa/dfa.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/dfa/dfa.cpp.o.d"
  "/root/repo/src/env/driver.cpp" "src/CMakeFiles/ceu.dir/env/driver.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/env/driver.cpp.o.d"
  "/root/repo/src/env/script.cpp" "src/CMakeFiles/ceu.dir/env/script.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/env/script.cpp.o.d"
  "/root/repo/src/flow/flowgraph.cpp" "src/CMakeFiles/ceu.dir/flow/flowgraph.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/flow/flowgraph.cpp.o.d"
  "/root/repo/src/lexer/lexer.cpp" "src/CMakeFiles/ceu.dir/lexer/lexer.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/lexer/lexer.cpp.o.d"
  "/root/repo/src/parser/parser.cpp" "src/CMakeFiles/ceu.dir/parser/parser.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/parser/parser.cpp.o.d"
  "/root/repo/src/runtime/cbind.cpp" "src/CMakeFiles/ceu.dir/runtime/cbind.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/runtime/cbind.cpp.o.d"
  "/root/repo/src/runtime/engine.cpp" "src/CMakeFiles/ceu.dir/runtime/engine.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/runtime/engine.cpp.o.d"
  "/root/repo/src/runtime/timerwheel.cpp" "src/CMakeFiles/ceu.dir/runtime/timerwheel.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/runtime/timerwheel.cpp.o.d"
  "/root/repo/src/runtime/value.cpp" "src/CMakeFiles/ceu.dir/runtime/value.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/runtime/value.cpp.o.d"
  "/root/repo/src/sema/bounded.cpp" "src/CMakeFiles/ceu.dir/sema/bounded.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/sema/bounded.cpp.o.d"
  "/root/repo/src/sema/sema.cpp" "src/CMakeFiles/ceu.dir/sema/sema.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/sema/sema.cpp.o.d"
  "/root/repo/src/util/diag.cpp" "src/CMakeFiles/ceu.dir/util/diag.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/util/diag.cpp.o.d"
  "/root/repo/src/util/timeval.cpp" "src/CMakeFiles/ceu.dir/util/timeval.cpp.o" "gcc" "src/CMakeFiles/ceu.dir/util/timeval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
