file(REMOVE_RECURSE
  "libceu.a"
)
