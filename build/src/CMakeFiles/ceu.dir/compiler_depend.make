# Empty compiler generated dependencies file for ceu.
# This may be replaced when dependencies are built.
