file(REMOVE_RECURSE
  "CMakeFiles/ceu_wsn.dir/wsn/mantis_runtime.cpp.o"
  "CMakeFiles/ceu_wsn.dir/wsn/mantis_runtime.cpp.o.d"
  "CMakeFiles/ceu_wsn.dir/wsn/mote.cpp.o"
  "CMakeFiles/ceu_wsn.dir/wsn/mote.cpp.o.d"
  "CMakeFiles/ceu_wsn.dir/wsn/nesc_runtime.cpp.o"
  "CMakeFiles/ceu_wsn.dir/wsn/nesc_runtime.cpp.o.d"
  "CMakeFiles/ceu_wsn.dir/wsn/network.cpp.o"
  "CMakeFiles/ceu_wsn.dir/wsn/network.cpp.o.d"
  "CMakeFiles/ceu_wsn.dir/wsn/radio.cpp.o"
  "CMakeFiles/ceu_wsn.dir/wsn/radio.cpp.o.d"
  "CMakeFiles/ceu_wsn.dir/wsn/tinyos_binding.cpp.o"
  "CMakeFiles/ceu_wsn.dir/wsn/tinyos_binding.cpp.o.d"
  "libceu_wsn.a"
  "libceu_wsn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceu_wsn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
