
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsn/mantis_runtime.cpp" "src/CMakeFiles/ceu_wsn.dir/wsn/mantis_runtime.cpp.o" "gcc" "src/CMakeFiles/ceu_wsn.dir/wsn/mantis_runtime.cpp.o.d"
  "/root/repo/src/wsn/mote.cpp" "src/CMakeFiles/ceu_wsn.dir/wsn/mote.cpp.o" "gcc" "src/CMakeFiles/ceu_wsn.dir/wsn/mote.cpp.o.d"
  "/root/repo/src/wsn/nesc_runtime.cpp" "src/CMakeFiles/ceu_wsn.dir/wsn/nesc_runtime.cpp.o" "gcc" "src/CMakeFiles/ceu_wsn.dir/wsn/nesc_runtime.cpp.o.d"
  "/root/repo/src/wsn/network.cpp" "src/CMakeFiles/ceu_wsn.dir/wsn/network.cpp.o" "gcc" "src/CMakeFiles/ceu_wsn.dir/wsn/network.cpp.o.d"
  "/root/repo/src/wsn/radio.cpp" "src/CMakeFiles/ceu_wsn.dir/wsn/radio.cpp.o" "gcc" "src/CMakeFiles/ceu_wsn.dir/wsn/radio.cpp.o.d"
  "/root/repo/src/wsn/tinyos_binding.cpp" "src/CMakeFiles/ceu_wsn.dir/wsn/tinyos_binding.cpp.o" "gcc" "src/CMakeFiles/ceu_wsn.dir/wsn/tinyos_binding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ceu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
