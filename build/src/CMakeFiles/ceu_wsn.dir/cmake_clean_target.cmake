file(REMOVE_RECURSE
  "libceu_wsn.a"
)
