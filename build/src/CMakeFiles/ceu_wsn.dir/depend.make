# Empty dependencies file for ceu_wsn.
# This may be replaced when dependencies are built.
