
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arduino/binding.cpp" "src/CMakeFiles/ceu_arduino.dir/arduino/binding.cpp.o" "gcc" "src/CMakeFiles/ceu_arduino.dir/arduino/binding.cpp.o.d"
  "/root/repo/src/arduino/board.cpp" "src/CMakeFiles/ceu_arduino.dir/arduino/board.cpp.o" "gcc" "src/CMakeFiles/ceu_arduino.dir/arduino/board.cpp.o.d"
  "/root/repo/src/arduino/lcd.cpp" "src/CMakeFiles/ceu_arduino.dir/arduino/lcd.cpp.o" "gcc" "src/CMakeFiles/ceu_arduino.dir/arduino/lcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ceu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
