file(REMOVE_RECURSE
  "libceu_arduino.a"
)
