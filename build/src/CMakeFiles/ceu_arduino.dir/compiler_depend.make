# Empty compiler generated dependencies file for ceu_arduino.
# This may be replaced when dependencies are built.
