file(REMOVE_RECURSE
  "CMakeFiles/ceu_arduino.dir/arduino/binding.cpp.o"
  "CMakeFiles/ceu_arduino.dir/arduino/binding.cpp.o.d"
  "CMakeFiles/ceu_arduino.dir/arduino/board.cpp.o"
  "CMakeFiles/ceu_arduino.dir/arduino/board.cpp.o.d"
  "CMakeFiles/ceu_arduino.dir/arduino/lcd.cpp.o"
  "CMakeFiles/ceu_arduino.dir/arduino/lcd.cpp.o.d"
  "libceu_arduino.a"
  "libceu_arduino.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceu_arduino.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
