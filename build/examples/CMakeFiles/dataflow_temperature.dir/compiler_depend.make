# Empty compiler generated dependencies file for dataflow_temperature.
# This may be replaced when dependencies are built.
