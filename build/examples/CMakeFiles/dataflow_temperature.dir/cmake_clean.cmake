file(REMOVE_RECURSE
  "CMakeFiles/dataflow_temperature.dir/dataflow_temperature.cpp.o"
  "CMakeFiles/dataflow_temperature.dir/dataflow_temperature.cpp.o.d"
  "dataflow_temperature"
  "dataflow_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataflow_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
