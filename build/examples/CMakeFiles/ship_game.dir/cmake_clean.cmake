file(REMOVE_RECURSE
  "CMakeFiles/ship_game.dir/ship_game.cpp.o"
  "CMakeFiles/ship_game.dir/ship_game.cpp.o.d"
  "ship_game"
  "ship_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ship_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
