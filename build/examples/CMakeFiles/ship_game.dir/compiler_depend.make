# Empty compiler generated dependencies file for ship_game.
# This may be replaced when dependencies are built.
