file(REMOVE_RECURSE
  "CMakeFiles/multihop_collection.dir/multihop_collection.cpp.o"
  "CMakeFiles/multihop_collection.dir/multihop_collection.cpp.o.d"
  "multihop_collection"
  "multihop_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihop_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
