# Empty dependencies file for multihop_collection.
# This may be replaced when dependencies are built.
