# Empty dependencies file for mario_replay.
# This may be replaced when dependencies are built.
