file(REMOVE_RECURSE
  "CMakeFiles/mario_replay.dir/mario_replay.cpp.o"
  "CMakeFiles/mario_replay.dir/mario_replay.cpp.o.d"
  "mario_replay"
  "mario_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mario_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
