# Empty compiler generated dependencies file for ring_network.
# This may be replaced when dependencies are built.
